"""The RDD: a lazy, partitioned, immutable dataset with lineage.

This mirrors Spark's core abstraction closely enough that the SBGT layer
reads like the paper's Spark pseudocode: transformations build lineage
lazily; actions submit jobs through the context's DAG scheduler.  Narrow
chains (``map``/``filter``/``map_partitions``) pipeline inside one task;
key-value shuffles (defined in :mod:`repro.engine.pair_rdd`) cut stages.

Only the driver constructs RDDs; tasks see them as read-only recipe
objects (``compute`` is pure given the task context).
"""

from __future__ import annotations

import bisect
import copy
import itertools
from typing import (
    Any,
    Callable,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.engine.dag import Dependency, NarrowDependency, ShuffleDependency
from repro.engine.errors import EngineError
from repro.util.rng import as_rng

T = TypeVar("T")
U = TypeVar("U")

__all__ = [
    "RDD",
    "TaskContext",
    "StatCounter",
    "ParallelCollectionRDD",
    "RangeRDD",
    "MapPartitionsRDD",
    "UnionRDD",
    "CoalescedRDD",
    "ZipPartitionsRDD",
    "CartesianRDD",
]


class StatCounter:
    """Streaming count/mean/variance/min/max (Welford, mergeable)."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value) -> "StatCounter":
        x = float(value)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)
        return self

    def merge(self, other: "StatCounter") -> "StatCounter":
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            self.min, self.max = other.min, other.max
            return self
        delta = other.mean - self.mean
        total = self.count + other.count
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def variance(self) -> float:
        """Population variance."""
        return self._m2 / self.count if self.count else float("nan")

    @property
    def stdev(self) -> float:
        return self.variance ** 0.5

    @property
    def sum(self) -> float:
        return self.mean * self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StatCounter(count={self.count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


class TaskContext:
    """Per-task handle: which partition is running, plus the runtime env.

    ``env`` provides ``fetcher`` (shuffle reads), ``blockstore`` (the
    driver store in serial/threads mode, the forked worker's resident
    store in process mode), cache generations, and any driver-held
    source partitions the scheduler shipped with the task.
    """

    __slots__ = ("env", "stage_id", "partition")

    def __init__(self, env, stage_id: int, partition: int) -> None:
        self.env = env
        self.stage_id = stage_id
        self.partition = partition


class RDD(Generic[T]):
    """Base resilient distributed dataset."""

    def __init__(self, ctx, deps: Sequence[Dependency], num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("an RDD must have at least one partition")
        self.ctx = ctx
        self.id = ctx._next_rdd_id()
        self.dependencies: List[Dependency] = list(deps)
        self.num_partitions = int(num_partitions)
        self.partitioner = None  # set by shuffles / preserved by map_values
        self._cached = False

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    def compute(self, split: int, tc: TaskContext) -> Iterable[T]:
        """Produce the records of partition *split* (pure recipe)."""
        raise NotImplementedError

    def narrow_parent_splits(self, split: int) -> List[Tuple["RDD", int]]:
        """Which (parent, split) pairs partition *split* reads narrowly.

        Used to locate the shuffle blocks a task payload must carry in
        process mode.  Default: same split of every narrow parent.
        """
        return [
            (dep.rdd, split)
            for dep in self.dependencies
            if isinstance(dep, NarrowDependency)
        ]

    # ------------------------------------------------------------------
    # runtime plumbing
    # ------------------------------------------------------------------
    def iterator(self, split: int, tc: TaskContext) -> Iterable[T]:
        """Cache-aware access to partition *split*."""
        store = tc.env.blockstore
        if self._cached and store is not None:
            key = (self.id, split)
            gen = tc.env.generation_of(self.id)
            block = store.get(key, gen)
            if block is None:
                block = list(self.compute(split, tc))
                store.put(key, block, gen)
            return block
        return self.compute(split, tc)

    def narrow_lineage(self, split: int) -> Iterator[Tuple["RDD", int]]:
        """Every (rdd, split) pair reachable from *split* without a shuffle.

        Yields ``(self, split)`` first, then walks narrow dependencies,
        deduplicating by ``(rdd.id, split)`` — diamonds (an RDD consumed
        by two branches of the same lineage) are visited once.  This is
        the walk the scheduler uses to assemble process-mode payloads:
        shuffle blocks, cache generations, and driver-held source
        partitions all live on nodes of this lineage.
        """
        seen = set()
        stack: List[Tuple[RDD, int]] = [(self, split)]
        while stack:
            rdd, sp = stack.pop()
            if (rdd.id, sp) in seen:
                continue
            seen.add((rdd.id, sp))
            yield rdd, sp
            stack.extend(rdd.narrow_parent_splits(sp))

    def shuffle_reads(self, split: int) -> List[Tuple[int, int]]:
        """All (shuffle_id, reduce_id) pairs computing *split* will fetch."""
        reads: List[Tuple[int, int]] = []
        for rdd, sp in self.narrow_lineage(split):
            reads.extend(rdd._direct_shuffle_reads(sp))
        return reads

    def _direct_shuffle_reads(self, split: int) -> List[Tuple[int, int]]:
        return [
            (dep.shuffle_id, split)
            for dep in self.dependencies
            if isinstance(dep, ShuffleDependency)
        ]

    def source_records(self, split: int) -> Optional[List[T]]:
        """Driver-held records of partition *split*, if this is a source RDD.

        Source RDDs holding real data (parallelized collections,
        checkpoints) return the partition's record list so the scheduler
        can ship *only that partition* with a process-mode task instead
        of pickling the whole dataset into every closure.  Recipe-only
        RDDs return ``None``.
        """
        return None

    # ------------------------------------------------------------------
    # caching
    # ------------------------------------------------------------------
    def cache(self) -> "RDD[T]":
        """Mark this RDD's partitions for reuse across jobs."""
        self._cached = True
        return self

    persist = cache

    def checkpoint(self) -> "RDD[T]":
        """Materialize now and return a lineage-free source RDD.

        Unlike :meth:`cache` (which keeps the recipe and may recompute
        after eviction), the returned RDD's partitions are driver-held
        data with no parents — recomputation can never reach past this
        point.  This is what bounds lineage depth in iterative
        algorithms (the distributed lattice checkpoints through the same
        mechanism).
        """
        parts = self.ctx.run_job(self, list)
        return _CheckpointedRDD(self.ctx, parts)

    def unpersist(self) -> "RDD[T]":
        self._cached = False
        self.ctx.block_store.drop_rdd(self.id)
        # Worker-resident stores can't be reached from here; bumping the
        # cache generation makes their entries stale on next access.
        self.ctx.bump_cache_generation(self.id)
        return self

    # ------------------------------------------------------------------
    # narrow transformations
    # ------------------------------------------------------------------
    def map_partitions_with_index(
        self, f: Callable[[int, Iterable[T]], Iterable[U]], preserves_partitioning: bool = False
    ) -> "RDD[U]":
        """The root transformation every other narrow op reduces to."""
        return MapPartitionsRDD(self, f, preserves_partitioning)

    def map_partitions(
        self, f: Callable[[Iterable[T]], Iterable[U]], preserves_partitioning: bool = False
    ) -> "RDD[U]":
        return self.map_partitions_with_index(lambda _i, it: f(it), preserves_partitioning)

    def map(self, f: Callable[[T], U]) -> "RDD[U]":
        return self.map_partitions_with_index(lambda _i, it: (f(x) for x in it))

    def filter(self, pred: Callable[[T], bool]) -> "RDD[T]":
        return self.map_partitions_with_index(
            lambda _i, it: (x for x in it if pred(x)), preserves_partitioning=True
        )

    def flat_map(self, f: Callable[[T], Iterable[U]]) -> "RDD[U]":
        return self.map_partitions_with_index(
            lambda _i, it: itertools.chain.from_iterable(f(x) for x in it)
        )

    def glom(self) -> "RDD[List[T]]":
        """One record per partition: the partition's records as a list."""
        return self.map_partitions_with_index(lambda _i, it: [list(it)])

    def key_by(self, f: Callable[[T], Any]) -> "RDD[Tuple[Any, T]]":
        return self.map(lambda x: (f(x), x))

    def zip_with_index(self) -> "RDD[Tuple[T, int]]":
        """Pair each record with its global index (needs a size pre-pass)."""
        sizes = self.ctx.run_job(self, lambda it: sum(1 for _ in it))
        offsets = [0]
        for s in sizes[:-1]:
            offsets.append(offsets[-1] + s)

        def attach(i: int, it: Iterable[T]) -> Iterator[Tuple[T, int]]:
            return ((x, offsets[i] + j) for j, x in enumerate(it))

        return self.map_partitions_with_index(attach, preserves_partitioning=True)

    def union(self, other: "RDD[T]") -> "RDD[T]":
        return UnionRDD(self.ctx, [self, other])

    def zip_partitions(
        self, other: "RDD[U]", f: Callable[[Iterable[T], Iterable[U]], Iterable[Any]]
    ) -> "RDD[Any]":
        return ZipPartitionsRDD([self, other], f)

    def zip(self, other: "RDD[U]") -> "RDD[Tuple[T, U]]":
        """Pair up records position-wise (requires equal partitioning)."""
        return self.zip_partitions(other, lambda a, b: zip(list(a), list(b), strict=True))

    def sample(self, fraction: float, seed: Optional[int] = None) -> "RDD[T]":
        """Bernoulli sample of each record, deterministic per (seed, split)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        base_seed = seed if seed is not None else int(as_rng(None).integers(2**31))

        def sampler(i: int, it: Iterable[T]) -> Iterator[T]:
            rng = as_rng(base_seed * 7919 + i)
            return (x for x in it if rng.random() < fraction)

        return self.map_partitions_with_index(sampler, preserves_partitioning=True)

    def coalesce(self, num_partitions: int) -> "RDD[T]":
        """Shrink to *num_partitions* without a shuffle (grouping splits)."""
        if num_partitions >= self.num_partitions:
            return self
        return CoalescedRDD(self, num_partitions)

    def repartition(self, num_partitions: int) -> "RDD[T]":
        """Change partition count via a full shuffle (balanced round-robin)."""
        from repro.engine.pair_rdd import partition_by_index

        return partition_by_index(self, num_partitions)

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD[T]":
        from repro.engine.pair_rdd import distinct as _distinct

        return _distinct(self, num_partitions)

    def sort_by(
        self,
        key_func: Callable[[T], Any],
        ascending: bool = True,
        num_partitions: Optional[int] = None,
    ) -> "RDD[T]":
        from repro.engine.pair_rdd import sort_by as _sort_by

        return _sort_by(self, key_func, ascending, num_partitions)

    def group_by(self, key_func: Callable[[T], Any], num_partitions: Optional[int] = None):
        return self.key_by(key_func).group_by_key(num_partitions)

    # ------------------------------------------------------------------
    # key-value transformations (implemented in pair_rdd, exposed here)
    # ------------------------------------------------------------------
    def map_values(self, f: Callable) -> "RDD":
        def mv(_i, it):
            return ((k, f(v)) for k, v in it)

        out = self.map_partitions_with_index(mv, preserves_partitioning=True)
        out.partitioner = self.partitioner
        return out

    def flat_map_values(self, f: Callable) -> "RDD":
        def fmv(_i, it):
            return ((k, u) for k, v in it for u in f(v))

        out = self.map_partitions_with_index(fmv, preserves_partitioning=True)
        out.partitioner = self.partitioner
        return out

    def keys(self) -> "RDD":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        return self.map(lambda kv: kv[1])

    def reduce_by_key(self, op: Callable, num_partitions: Optional[int] = None) -> "RDD":
        from repro.engine.pair_rdd import reduce_by_key as _rbk

        return _rbk(self, op, num_partitions)

    def combine_by_key(
        self,
        create: Callable,
        merge_value: Callable,
        merge_combiners: Callable,
        num_partitions: Optional[int] = None,
        map_side_combine: bool = True,
    ) -> "RDD":
        from repro.engine.pair_rdd import combine_by_key as _cbk

        return _cbk(self, create, merge_value, merge_combiners, num_partitions, map_side_combine)

    def aggregate_by_key(
        self, zero: Any, seq_op: Callable, comb_op: Callable, num_partitions: Optional[int] = None
    ) -> "RDD":
        from repro.engine.pair_rdd import aggregate_by_key as _abk

        return _abk(self, zero, seq_op, comb_op, num_partitions)

    def fold_by_key(self, zero: Any, op: Callable, num_partitions: Optional[int] = None) -> "RDD":
        return self.aggregate_by_key(zero, op, op, num_partitions)

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        from repro.engine.pair_rdd import group_by_key as _gbk

        return _gbk(self, num_partitions)

    def partition_by(self, partitioner) -> "RDD":
        from repro.engine.pair_rdd import partition_by as _pb

        return _pb(self, partitioner)

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        from repro.engine.pair_rdd import join as _join

        return _join(self, other, num_partitions, how="inner")

    def left_outer_join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        from repro.engine.pair_rdd import join as _join

        return _join(self, other, num_partitions, how="left")

    def right_outer_join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        from repro.engine.pair_rdd import join as _join

        return _join(self, other, num_partitions, how="right")

    def full_outer_join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        from repro.engine.pair_rdd import join as _join

        return _join(self, other, num_partitions, how="full")

    def cogroup(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        from repro.engine.pair_rdd import cogroup as _cogroup

        return _cogroup([self, other], num_partitions)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def collect(self) -> List[T]:
        """Materialize every record at the driver, in partition order."""
        parts = self.ctx.run_job(self, list)
        return [x for p in parts for x in p]

    def collect_partitions(self) -> List[List[T]]:
        return self.ctx.run_job(self, list)

    def count(self) -> int:
        return sum(self.ctx.run_job(self, lambda it: sum(1 for _ in it)))

    def is_empty(self) -> bool:
        return len(self.take(1)) == 0

    def reduce(self, op: Callable[[T, T], T]) -> T:
        """Combine all records with *op* (associative & commutative)."""
        sentinel = object()

        def part_reduce(it: Iterable[T]):
            acc = sentinel
            for x in it:
                acc = x if acc is sentinel else op(acc, x)
            return acc

        partials = [p for p in self.ctx.run_job(self, part_reduce) if p is not sentinel]
        if not partials:
            raise EngineError("reduce() of empty RDD")
        acc = partials[0]
        for p in partials[1:]:
            acc = op(acc, p)
        return acc

    def fold(self, zero: T, op: Callable[[T, T], T]) -> T:
        # Each partition folds into its *own* copy of the zero (Spark
        # ships a serialized zero per task); in-place ops stay safe.
        partials = self.ctx.run_job(self, lambda it: _fold_iter(it, copy.deepcopy(zero), op))
        acc = copy.deepcopy(zero)
        for p in partials:
            acc = op(acc, p)
        return acc

    def aggregate(self, zero: U, seq_op: Callable[[U, T], U], comb_op: Callable[[U, U], U]) -> U:
        partials = self.ctx.run_job(
            self, lambda it: _fold_iter(it, copy.deepcopy(zero), seq_op)
        )
        acc = copy.deepcopy(zero)
        for p in partials:
            acc = comb_op(acc, p)
        return acc

    def tree_aggregate(
        self,
        zero: U,
        seq_op: Callable[[U, T], U],
        comb_op: Callable[[U, U], U],
        depth: int = 2,
        scale: int = 8,
    ) -> U:
        """Aggregate with intermediate combine rounds on the engine.

        Avoids funnelling every partition's partial through the driver at
        once: while more than ``scale`` partials remain and *depth*
        allows, partials are re-parallelized and pair-combined as a job.
        """
        if depth < 1:
            raise ValueError("depth must be >= 1")
        partials = self.ctx.run_job(
            self, lambda it: _fold_iter(it, copy.deepcopy(zero), seq_op)
        )
        rounds = depth - 1
        while rounds > 0 and len(partials) > scale:
            n_groups = max(scale, (len(partials) + 1) // 2)
            grouped = self.ctx.parallelize(partials, min(n_groups, len(partials)))
            partials = grouped.ctx.run_job(
                grouped,
                lambda it: _reduce_iter_with_zero(it, copy.deepcopy(zero), comb_op),
            )
            rounds -= 1
        acc = copy.deepcopy(zero)
        for p in partials:
            acc = comb_op(acc, p)
        return acc

    def tree_reduce(self, op: Callable[[T, T], T], depth: int = 2) -> T:
        sentinel = _MISSING  # deepcopy-stable singleton (zero gets copied)

        def seq(acc, x):
            return x if acc is sentinel else op(acc, x)

        def comb(a, b):
            if a is sentinel:
                return b
            if b is sentinel:
                return a
            return op(a, b)

        out = self.tree_aggregate(sentinel, seq, comb, depth=depth)
        if out is sentinel:
            raise EngineError("tree_reduce() of empty RDD")
        return out

    def take(self, n: int) -> List[T]:
        """First *n* records, scanning as few partitions as possible."""
        if n <= 0:
            return []
        out: List[T] = []
        for p in range(self.num_partitions):
            got = self.ctx.run_job(self, lambda it: list(itertools.islice(it, n - len(out))), [p])
            out.extend(got[0])
            if len(out) >= n:
                break
        return out[:n]

    def first(self) -> T:
        got = self.take(1)
        if not got:
            raise EngineError("first() of empty RDD")
        return got[0]

    def top(self, n: int, key: Optional[Callable] = None) -> List[T]:
        """Largest *n* records (descending), via per-partition heaps."""
        import heapq

        def part_top(it: Iterable[T]) -> List[T]:
            return heapq.nlargest(n, it, key=key)

        partials = self.ctx.run_job(self, part_top)
        return heapq.nlargest(n, itertools.chain.from_iterable(partials), key=key)

    def sum(self) -> Any:
        return self.fold(0, lambda a, b: a + b)

    def max(self, key: Optional[Callable] = None) -> T:
        if key is None:
            return self.reduce(lambda a, b: a if a >= b else b)
        return self.reduce(lambda a, b: a if key(a) >= key(b) else b)

    def min(self, key: Optional[Callable] = None) -> T:
        if key is None:
            return self.reduce(lambda a, b: a if a <= b else b)
        return self.reduce(lambda a, b: a if key(a) <= key(b) else b)

    def mean(self) -> float:
        total, count = self.aggregate(
            (0.0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        if count == 0:
            raise EngineError("mean() of empty RDD")
        return total / count

    def stats(self) -> "StatCounter":
        """Count/mean/stdev/min/max in one pass (Welford merging)."""
        return self.aggregate(
            StatCounter(), lambda acc, x: acc.add(x), lambda a, b: a.merge(b)
        )

    def histogram(self, buckets) -> Tuple[List[float], List[int]]:
        """Bucketed counts of a numeric RDD.

        ``buckets`` is either a bucket count (evenly spaced over
        [min, max], computed with one extra pass) or an explicit sorted
        edge list.  Returns ``(edges, counts)`` with ``len(counts) ==
        len(edges) - 1``; the last bucket is closed on the right.
        """
        if isinstance(buckets, int):
            if buckets <= 0:
                raise ValueError("bucket count must be positive")
            st = self.stats()
            if st.count == 0:
                raise EngineError("histogram() of empty RDD")
            lo, hi = float(st.min), float(st.max)
            if lo == hi:
                edges = [lo, hi]
                return edges, [int(st.count)]
            step = (hi - lo) / buckets
            edges = [lo + i * step for i in range(buckets)] + [hi]
        else:
            edges = [float(e) for e in buckets]
            if len(edges) < 2 or any(a >= b for a, b in zip(edges, edges[1:])):
                raise ValueError("explicit edges must be sorted and >= 2 long")
        n_buckets = len(edges) - 1

        def part_hist(it: Iterable) -> List[int]:
            counts = [0] * n_buckets
            for x in it:
                x = float(x)
                if x < edges[0] or x > edges[-1]:
                    continue
                idx = min(bisect.bisect_right(edges, x) - 1, n_buckets - 1)
                counts[idx] += 1
            return counts

        partials = self.ctx.run_job(self, part_hist)
        totals = [sum(col) for col in zip(*partials)] if partials else [0] * n_buckets
        return edges, totals

    def take_ordered(self, n: int, key: Optional[Callable] = None) -> List[T]:
        """Smallest *n* records in ascending order."""
        import heapq

        if n <= 0:
            return []
        partials = self.ctx.run_job(self, lambda it: heapq.nsmallest(n, it, key=key))
        return heapq.nsmallest(n, itertools.chain.from_iterable(partials), key=key)

    def take_sample(
        self, num: int, with_replacement: bool = False, seed: Optional[int] = None
    ) -> List[T]:
        """Random sample of exactly ``min(num, count)`` records.

        Two passes: a count, then an over-provisioned Bernoulli sample
        trimmed (or a full collect when the RDD is small relative to
        *num*).  Deterministic given *seed*.
        """
        if num < 0:
            raise ValueError("num must be non-negative")
        if num == 0:
            return []
        rng = as_rng(seed if seed is not None else None)
        total = self.count()
        if total == 0:
            return []
        if with_replacement:
            pool = self.collect() if total <= 4 * num else self.take_sample(min(total, 4 * num), False, seed)
            idx = rng.integers(0, len(pool), size=num)
            return [pool[i] for i in idx]
        if num >= total:
            return self.collect()
        fraction = min(1.0, (num / total) * 2 + 8 / total)
        sampled = self.sample(fraction, seed=int(rng.integers(2**31))).collect()
        while len(sampled) < num:  # rare under-draw: widen
            fraction = min(1.0, fraction * 2)
            sampled = self.sample(fraction, seed=int(rng.integers(2**31))).collect()
        picks = rng.choice(len(sampled), size=num, replace=False)
        return [sampled[i] for i in sorted(picks)]

    def subtract(self, other: "RDD[T]", num_partitions: Optional[int] = None) -> "RDD[T]":
        """Records of self absent from *other* (multiset-collapsing)."""
        from repro.engine.pair_rdd import subtract as _subtract

        return _subtract(self, other, num_partitions)

    def intersection(self, other: "RDD[T]", num_partitions: Optional[int] = None) -> "RDD[T]":
        """Distinct records present in both RDDs."""
        from repro.engine.pair_rdd import intersection as _intersection

        return _intersection(self, other, num_partitions)

    def cartesian(self, other: "RDD[U]") -> "RDD[Tuple[T, U]]":
        """All pairs (x, y); partition count multiplies — keep inputs small."""
        return CartesianRDD(self, other)

    def debug_string(self) -> str:
        """Lineage tree, Spark's ``toDebugString`` analogue."""
        lines: List[str] = []

        def walk(rdd: "RDD", depth: int) -> None:
            from repro.engine.dag import ShuffleDependency

            indent = "  " * depth
            lines.append(
                f"{indent}({rdd.num_partitions}) {type(rdd).__name__}[{rdd.id}]"
            )
            for dep in rdd.dependencies:
                if isinstance(dep, ShuffleDependency):
                    lines.append(f"{indent} +-shuffle {dep.shuffle_id}")
                walk(dep.rdd, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    def count_approx_distinct(self, precision: int = 12) -> int:
        """Approximate distinct count via a HyperLogLog sketch.

        One narrow pass and O(2^precision) bytes instead of
        ``distinct().count()``'s full shuffle; relative standard error
        ≈ 1.04/√(2^precision) (~1.6 % at the default).
        """
        from repro.engine.hll import count_approx_distinct

        return count_approx_distinct(self, precision)

    def count_by_value(self) -> dict:
        def part_counts(it: Iterable[T]) -> dict:
            d: dict = {}
            for x in it:
                d[x] = d.get(x, 0) + 1
            return d

        out: dict = {}
        for d in self.ctx.run_job(self, part_counts):
            for k, v in d.items():
                out[k] = out.get(k, 0) + v
        return out

    def count_by_key(self) -> dict:
        return self.map(lambda kv: kv[0]).count_by_value()

    def lookup(self, key: Any) -> List[Any]:
        """All values for *key*; targets one partition when partitioned."""
        if self.partitioner is not None:
            p = self.partitioner.partition(key)
            parts = self.ctx.run_job(self, lambda it: [v for k, v in it if k == key], [p])
            return parts[0]
        return self.filter(lambda kv: kv[0] == key).values().collect()

    def foreach(self, f: Callable[[T], None]) -> None:
        """Run *f* for side effects (accumulators) on every record."""
        self.ctx.run_job(self, lambda it: _consume(it, f))

    def foreach_partition(self, f: Callable[[Iterable[T]], None]) -> None:
        self.ctx.run_job(self, lambda it: (f(it), None)[1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(id={self.id}, partitions={self.num_partitions})"


class _MissingType:
    """Sentinel that survives (deep)copying with identity intact."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    def __reduce__(self):  # pickles back to the same singleton
        return (_MissingType, ())


_MISSING = _MissingType()


def _fold_iter(it: Iterable, zero: Any, op: Callable) -> Any:
    acc = zero
    for x in it:
        acc = op(acc, x)
    return acc


def _reduce_iter_with_zero(it: Iterable, zero: Any, comb: Callable) -> Any:
    acc = zero
    for x in it:
        acc = comb(acc, x)
    return acc


def _consume(it: Iterable, f: Callable) -> None:
    for x in it:
        f(x)


# ----------------------------------------------------------------------
# concrete source / narrow RDDs
# ----------------------------------------------------------------------
class ParallelCollectionRDD(RDD[T]):
    """Driver-local sequence sliced into roughly equal partitions.

    Pickling drops the data (``_slices`` becomes ``None``): a task
    closure must not drag the entire collection across the process
    boundary for every partition.  The scheduler ships the one needed
    partition in the task's source payload instead, and ``compute``
    falls back to it when the slices are absent.
    """

    def __init__(self, ctx, data: Sequence[T], num_partitions: int) -> None:
        data = list(data)
        n_parts = max(1, min(num_partitions, max(1, len(data))))
        super().__init__(ctx, [], n_parts)
        bounds = [round(i * len(data) / n_parts) for i in range(n_parts + 1)]
        self._slices = [data[bounds[i] : bounds[i + 1]] for i in range(n_parts)]

    def source_records(self, split: int) -> Optional[List[T]]:
        if self._slices is None:  # pragma: no cover - driver always holds data
            return None
        return self._slices[split]

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_slices"] = None
        return state

    def compute(self, split: int, tc: TaskContext) -> Iterable[T]:
        if self._slices is None:
            return iter(tc.env.source_records(self.id, split))
        return iter(self._slices[split])


class _CheckpointedRDD(RDD[T]):
    """Materialized partitions with no lineage (see ``RDD.checkpoint``).

    Ships like :class:`ParallelCollectionRDD`: data stays at the driver,
    tasks receive only their own partition.
    """

    def __init__(self, ctx, partitions: List[List[T]]) -> None:
        super().__init__(ctx, [], max(1, len(partitions)))
        self._partitions = partitions if partitions else [[]]

    def source_records(self, split: int) -> Optional[List[T]]:
        if self._partitions is None:  # pragma: no cover - driver always holds data
            return None
        return self._partitions[split]

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_partitions"] = None
        return state

    def compute(self, split: int, tc: TaskContext) -> Iterable[T]:
        if self._partitions is None:
            return iter(tc.env.source_records(self.id, split))
        return iter(self._partitions[split])


class RangeRDD(RDD[int]):
    """Lazy integer range, never materialized at the driver."""

    def __init__(self, ctx, start: int, stop: int, step: int, num_partitions: int) -> None:
        if step == 0:
            raise ValueError("step must be non-zero")
        total = max(0, -(-(stop - start) // step))
        n_parts = max(1, min(num_partitions, max(1, total)))
        super().__init__(ctx, [], n_parts)
        self._start, self._stop, self._step, self._total = start, stop, step, total

    def compute(self, split: int, tc: TaskContext) -> Iterable[int]:
        lo = round(split * self._total / self.num_partitions)
        hi = round((split + 1) * self._total / self.num_partitions)
        return range(self._start + lo * self._step, self._start + hi * self._step, self._step)


class MapPartitionsRDD(RDD[U]):
    """Applies ``f(split_index, parent_iterator)`` — the pipelining node."""

    def __init__(self, parent: RDD, f: Callable, preserves_partitioning: bool) -> None:
        super().__init__(parent.ctx, [NarrowDependency(parent)], parent.num_partitions)
        self._parent = parent
        self._f = f
        if preserves_partitioning:
            self.partitioner = parent.partitioner

    def compute(self, split: int, tc: TaskContext) -> Iterable[U]:
        return self._f(split, self._parent.iterator(split, tc))


class UnionRDD(RDD[T]):
    """Concatenation: partitions of every input, in order."""

    def __init__(self, ctx, rdds: Sequence[RDD[T]]) -> None:
        if not rdds:
            raise ValueError("union of no RDDs")
        super().__init__(ctx, [NarrowDependency(r) for r in rdds], sum(r.num_partitions for r in rdds))
        self._rdds = list(rdds)
        self._offsets = [0]
        for r in rdds:
            self._offsets.append(self._offsets[-1] + r.num_partitions)

    def _locate(self, split: int) -> Tuple[RDD[T], int]:
        idx = bisect.bisect_right(self._offsets, split) - 1
        return self._rdds[idx], split - self._offsets[idx]

    def compute(self, split: int, tc: TaskContext) -> Iterable[T]:
        rdd, sub = self._locate(split)
        return rdd.iterator(sub, tc)

    def narrow_parent_splits(self, split: int) -> List[Tuple[RDD, int]]:
        return [self._locate(split)]


class CoalescedRDD(RDD[T]):
    """Groups contiguous parent partitions; no data movement."""

    def __init__(self, parent: RDD[T], num_partitions: int) -> None:
        super().__init__(parent.ctx, [NarrowDependency(parent)], num_partitions)
        self._parent = parent
        n, m = parent.num_partitions, num_partitions
        self._groups = [
            list(range(round(i * n / m), round((i + 1) * n / m))) for i in range(m)
        ]

    def compute(self, split: int, tc: TaskContext) -> Iterable[T]:
        return itertools.chain.from_iterable(
            self._parent.iterator(p, tc) for p in self._groups[split]
        )

    def narrow_parent_splits(self, split: int) -> List[Tuple[RDD, int]]:
        return [(self._parent, p) for p in self._groups[split]]


class CartesianRDD(RDD[Tuple[T, U]]):
    """All (left, right) pairs; one partition per input-partition pair."""

    def __init__(self, left: RDD[T], right: RDD[U]) -> None:
        super().__init__(
            left.ctx,
            [NarrowDependency(left), NarrowDependency(right)],
            left.num_partitions * right.num_partitions,
        )
        self._left = left
        self._right = right

    def _locate(self, split: int) -> Tuple[int, int]:
        return divmod(split, self._right.num_partitions)

    def compute(self, split: int, tc: TaskContext) -> Iterable[Tuple[T, U]]:
        li, ri = self._locate(split)
        right_records = list(self._right.iterator(ri, tc))
        return (
            (x, y) for x in self._left.iterator(li, tc) for y in right_records
        )

    def narrow_parent_splits(self, split: int) -> List[Tuple[RDD, int]]:
        li, ri = self._locate(split)
        return [(self._left, li), (self._right, ri)]


class ZipPartitionsRDD(RDD[Any]):
    """Applies ``f(it_1, ..., it_k)`` over aligned partitions of k RDDs."""

    def __init__(self, rdds: Sequence[RDD], f: Callable) -> None:
        if not rdds:
            raise ValueError("zip_partitions of no RDDs")
        n = rdds[0].num_partitions
        if any(r.num_partitions != n for r in rdds):
            raise ValueError("zip_partitions requires equal partition counts")
        super().__init__(rdds[0].ctx, [NarrowDependency(r) for r in rdds], n)
        self._rdds = list(rdds)
        self._f = f

    def compute(self, split: int, tc: TaskContext) -> Iterable[Any]:
        return self._f(*(r.iterator(split, tc) for r in self._rdds))
