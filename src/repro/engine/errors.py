"""Exception taxonomy for the dataflow engine."""

from __future__ import annotations

__all__ = [
    "EngineError",
    "JobFailedError",
    "TaskFailedError",
    "SerializationError",
    "ClosureSerializationError",
    "ShuffleFetchError",
    "ContextStoppedError",
]


class EngineError(RuntimeError):
    """Base class for all engine failures.

    When the owning context has a flight recorder, the scheduler
    attaches the last event window to any failure escaping ``run_job``
    as :attr:`post_mortem` (a list of event dicts, oldest first), so the
    traceback carries the engine's black box with it.
    """

    #: Last-N engine events before the failure (None = no recorder).
    post_mortem = None


class TaskFailedError(EngineError):
    """A single task exhausted its retries.

    Carries the stage/partition coordinates and the last underlying
    exception so job-level handlers can report precisely what died.
    """

    def __init__(self, stage_id: int, partition: int, attempts: int, cause: BaseException):
        super().__init__(
            f"task failed: stage={stage_id} partition={partition} "
            f"after {attempts} attempt(s): {cause!r}"
        )
        self.stage_id = stage_id
        self.partition = partition
        self.attempts = attempts
        self.cause = cause


class JobFailedError(EngineError):
    """A job aborted because one of its stages could not complete."""


class SerializationError(EngineError):
    """A closure or record could not be pickled for process execution."""


class ClosureSerializationError(SerializationError):
    """A task closure failed to serialize, with the capture localized.

    Raised instead of a bare :class:`SerializationError` when the
    :mod:`repro.lint` bridge can name the unpicklable capture — the
    message then carries the capture path (function definition site,
    closure cell / default name), the lint rule that flags it
    statically, and :attr:`capture_path` / :attr:`rule` for
    programmatic handling.
    """

    def __init__(self, message: str, *, capture_path=(), rule=None):
        super().__init__(message)
        self.capture_path = tuple(capture_path)
        self.rule = rule


class ShuffleFetchError(EngineError):
    """A reduce task asked for map output that was never registered."""


class ContextStoppedError(EngineError):
    """An operation was attempted on a stopped :class:`~repro.engine.Context`."""
