"""Lineage dependencies and the stage graph.

Every RDD records how it reads its parents:

* :class:`NarrowDependency` — each output partition reads a bounded set of
  parent partitions; the chain executes inside one task (pipelined).
* :class:`ShuffleDependency` — every output partition may read every
  parent partition; the scheduler cuts the lineage here and runs a
  shuffle-map stage that buckets records by the target partitioner.

:func:`build_stages` walks a final RDD's lineage and produces the stage
DAG the scheduler executes bottom-up, reusing already-materialized
shuffles (the engine's analogue of Spark's skipped stages).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.engine.lockorder import OrderedLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rdd import RDD
    from repro.engine.shuffle import Partitioner

__all__ = [
    "Dependency",
    "NarrowDependency",
    "ShuffleDependency",
    "Aggregator",
    "Stage",
    "build_stages",
]

_stage_ids = itertools.count()
_stage_lock = OrderedLock("_stage_lock")


class Aggregator:
    """Map/reduce-side combining logic for a key-value shuffle.

    ``create(v)`` builds a combiner from the first value of a key,
    ``merge_value(c, v)`` folds further values in, ``merge_combiners``
    joins combiners across map outputs.  When ``map_side_combine`` is
    true the map task pre-combines before bucketing, shrinking shuffle
    traffic exactly as Spark's ``combineByKey`` does.
    """

    __slots__ = ("create", "merge_value", "merge_combiners", "map_side_combine")

    def __init__(
        self,
        create: Callable,
        merge_value: Callable,
        merge_combiners: Callable,
        map_side_combine: bool = True,
    ) -> None:
        self.create = create
        self.merge_value = merge_value
        self.merge_combiners = merge_combiners
        self.map_side_combine = map_side_combine


class Dependency:
    """Base edge in the lineage graph."""

    __slots__ = ("rdd",)

    def __init__(self, rdd: "RDD") -> None:
        self.rdd = rdd


class NarrowDependency(Dependency):
    """One task reads a bounded, statically-known set of parent splits."""

    __slots__ = ()


class ShuffleDependency(Dependency):
    """Stage boundary: repartition parent records by key."""

    __slots__ = ("partitioner", "aggregator", "shuffle_id", "key_func")

    def __init__(
        self,
        rdd: "RDD",
        partitioner: "Partitioner",
        aggregator: Optional[Aggregator] = None,
        key_func: Optional[Callable] = None,
    ) -> None:
        super().__init__(rdd)
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.key_func = key_func  # None => records are (k, v) pairs already
        self.shuffle_id = rdd.ctx.shuffle_manager.new_shuffle_id()


class Stage:
    """A pipelined set of tasks ending at ``rdd``.

    ``shuffle_dep`` is set for map stages (their tasks write that
    shuffle's buckets); result stages have it ``None``.
    """

    def __init__(
        self,
        rdd: "RDD",
        shuffle_dep: Optional[ShuffleDependency],
        parents: List["Stage"],
    ) -> None:
        with _stage_lock:
            self.id = next(_stage_ids)
        self.rdd = rdd
        self.shuffle_dep = shuffle_dep
        self.parents = parents

    @property
    def kind(self) -> str:
        return "shuffle-map" if self.shuffle_dep is not None else "result"

    @property
    def num_tasks(self) -> int:
        return self.rdd.num_partitions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stage(id={self.id}, kind={self.kind}, rdd={self.rdd.id})"


def _shuffle_parents(rdd: "RDD") -> List[ShuffleDependency]:
    """Shuffle dependencies reachable from *rdd* crossing only narrow deps."""
    out: List[ShuffleDependency] = []
    seen = set()
    stack = [rdd]
    while stack:
        r = stack.pop()
        if r.id in seen:
            continue
        seen.add(r.id)
        for dep in r.dependencies:
            if isinstance(dep, ShuffleDependency):
                out.append(dep)
            else:
                stack.append(dep.rdd)
    return out


def build_stages(final_rdd: "RDD") -> Stage:
    """Build the stage DAG rooted at the result stage for *final_rdd*.

    Shuffles already present in the shuffle manager are still represented
    (the scheduler checks materialization and skips them) so metrics can
    report skipped stages.
    """
    cache: Dict[int, Stage] = {}  # shuffle_id -> map stage

    def stage_for_shuffle(dep: ShuffleDependency) -> Stage:
        st = cache.get(dep.shuffle_id)
        if st is None:
            parents = [stage_for_shuffle(d) for d in _shuffle_parents(dep.rdd)]
            st = Stage(dep.rdd, dep, parents)
            cache[dep.shuffle_id] = st
        return st

    parents = [stage_for_shuffle(d) for d in _shuffle_parents(final_rdd)]
    return Stage(final_rdd, None, parents)
