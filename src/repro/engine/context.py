"""The engine entry point: :class:`Context` (the ``SparkContext`` analogue).

A context owns the executor pool, shuffle manager, block store, metrics
registry and accumulator registry.  RDDs are created through it and every
action funnels through :meth:`run_job`.

>>> from repro.engine import Context
>>> with Context(mode="serial") as ctx:
...     ctx.parallelize(range(10), 4).map(lambda x: x * x).sum()
285
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.engine import lockorder
from repro.engine.accumulator import Accumulator, AccumulatorRegistry
from repro.engine.blockstore import BlockStore
from repro.engine.broadcast import Broadcast
from repro.engine.config import EngineConfig
from repro.engine.errors import ContextStoppedError
from repro.engine.executor import BaseExecutor, make_executor
from repro.engine.listener import EngineListener, EventBus, LockOrderViolation
from repro.engine.metrics import MetricsRegistry
from repro.engine.rdd import RDD, ParallelCollectionRDD, RangeRDD, UnionRDD
from repro.engine.scheduler import Scheduler
from repro.engine.shuffle import ShuffleManager

T = TypeVar("T")

__all__ = ["Context"]


class Context:
    """Driver-side handle to the dataflow engine.

    Parameters
    ----------
    mode, parallelism, shuffle_partitions, max_task_retries:
        Shorthand for the corresponding :class:`EngineConfig` fields.
    config:
        A full config object; overrides the shorthand arguments.
    """

    def __init__(
        self,
        mode: str = "threads",
        parallelism: int = 0,
        shuffle_partitions: int = 0,
        max_task_retries: int = 2,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.config = config or EngineConfig(
            mode=mode,
            parallelism=parallelism,
            shuffle_partitions=shuffle_partitions,
            max_task_retries=max_task_retries,
        )
        if self.config.lock_sanitizer:
            lockorder.set_sanitizer_mode(self.config.lock_sanitizer)
        self.event_bus = EventBus(enabled=self.config.enable_events)
        # The always-on black box: a bounded recorder every context gets
        # by default so failures and /debug endpoints have history to
        # show.  Imported lazily — repro.obs sits above the engine.
        self.flight_recorder = None
        if self.config.enable_events and self.config.flight_recorder:
            from repro.obs.flight import FlightRecorder

            self.flight_recorder = FlightRecorder(
                capacity=self.config.flight_capacity,
                slow_threshold_s=self.config.slow_threshold_s,
            )
            self.event_bus.register(self.flight_recorder)
        self.shuffle_manager = ShuffleManager(bus=self.event_bus)
        self.block_store = BlockStore(self.config.cache_capacity_bytes, bus=self.event_bus)
        # The context's labelled-metrics hub: the registry publishes job
        # rollups into it and sinks (serve /metrics, Prometheus
        # exposition, CLI) snapshot it.  Lazily imported like the flight
        # recorder — repro.obs sits above the engine.
        from repro.obs.metrics import MetricsHub

        self.metrics_hub = MetricsHub()
        self.metrics = MetricsRegistry(hub=self.metrics_hub)
        self.accumulator_registry = AccumulatorRegistry()
        self._scheduler = Scheduler(self)
        self._rdd_ids = itertools.count()
        # Per-RDD cache epochs (the cache-generation protocol): bumped on
        # unpersist, stamped into process-mode task payloads so worker-
        # resident stores drop stale entries without a driver channel.
        self._cache_generations: dict = {}
        self._lock = lockorder.OrderedLock("Context._lock")
        self._executor: Optional[BaseExecutor] = None
        self._stopped = False
        # Surface sanitizer violations (record mode) on this context's
        # bus and hub so they are observable like any other engine fact.
        self._lock_violations_counter = self.metrics_hub.counter(
            "repro_lock_order_violations_total",
            "Out-of-order lock acquisitions observed by the runtime sanitizer",
        )
        self._lockorder_hook = lockorder.add_violation_hook(self._on_lock_violation)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def executor(self) -> BaseExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = make_executor(
                    self.config.mode,
                    self.shuffle_manager,
                    self.block_store,
                    self.config.max_task_retries,
                    self.config.effective_parallelism,
                    bus=self.event_bus,
                    generations=self._cache_generations,
                )
            return self._executor

    def ensure_running(self) -> None:
        if self._stopped:
            raise ContextStoppedError("context has been stopped")

    def stop(self) -> None:
        """Shut down the executor pool and drop all engine state."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            executor, self._executor = self._executor, None
        # Joining pool workers can take arbitrarily long; do it after
        # releasing the context lock (E205: a blocked `executor`
        # property access must not pile up behind the shutdown).
        if executor is not None:
            executor.stop()
        lockorder.remove_violation_hook(self._on_lock_violation)
        self.shuffle_manager.clear()
        self.block_store.clear()

    def _on_lock_violation(self, record: "lockorder.ViolationRecord") -> None:
        """Sanitizer hook (record mode): post a bus event, bump the counter."""
        bus = self.event_bus
        if bus:
            bus.post(
                LockOrderViolation(
                    acquired=record.acquired,
                    acquired_level=record.acquired_level,
                    held=record.held,
                    held_level=record.held_level,
                    thread=record.thread,
                )
            )
        self._lock_violations_counter.inc()

    def __enter__(self) -> "Context":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # dataset constructors
    # ------------------------------------------------------------------
    @property
    def default_parallelism(self) -> int:
        return self.config.effective_parallelism

    def parallelize(self, data: Iterable[T], num_partitions: Optional[int] = None) -> RDD[T]:
        """Distribute a driver-local collection."""
        self.ensure_running()
        n = num_partitions or self.default_parallelism
        return ParallelCollectionRDD(self, list(data), n)

    def range(
        self,
        start: int,
        stop: Optional[int] = None,
        step: int = 1,
        num_partitions: Optional[int] = None,
    ) -> RDD[int]:
        """Lazy integer range RDD (never materialized at the driver)."""
        self.ensure_running()
        if stop is None:
            start, stop = 0, start
        return RangeRDD(self, start, stop, step, num_partitions or self.default_parallelism)

    def union(self, rdds: Sequence[RDD[T]]) -> RDD[T]:
        self.ensure_running()
        return UnionRDD(self, rdds)

    # ------------------------------------------------------------------
    # shared variables
    # ------------------------------------------------------------------
    def broadcast(self, value: Any) -> Broadcast:
        """Publish a read-only value to every task."""
        self.ensure_running()
        return Broadcast(value)

    def accumulator(
        self, zero: Any, op: Optional[Callable] = None, name: str = ""
    ) -> Accumulator:
        """Create and register a driver-merged accumulator."""
        self.ensure_running()
        acc = Accumulator(zero, op, name)
        self.accumulator_registry.register(acc)
        return acc

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def add_listener(self, listener: EngineListener) -> EngineListener:
        """Subscribe *listener* to this context's event bus."""
        return self.event_bus.register(listener)

    def remove_listener(self, listener: EngineListener) -> None:
        """Unsubscribe *listener* from this context's event bus."""
        self.event_bus.unregister(listener)

    # ------------------------------------------------------------------
    # job submission
    # ------------------------------------------------------------------
    def run_job(
        self,
        rdd: RDD,
        func: Callable[[Iterable], Any],
        partitions: Optional[Sequence[int]] = None,
        description: str = "",
    ) -> List[Any]:
        """Run ``func`` over each requested partition; one result per split."""
        return self._scheduler.run_job(rdd, func, partitions, description)

    # internal: sequential RDD ids for cache keys and metrics
    def _next_rdd_id(self) -> int:
        return next(self._rdd_ids)

    # ------------------------------------------------------------------
    # cache-generation protocol
    # ------------------------------------------------------------------
    def cache_generation(self, rdd_id: int) -> int:
        """Current cache epoch of *rdd_id* (0 until first unpersist)."""
        return self._cache_generations.get(rdd_id, 0)

    def bump_cache_generation(self, rdd_id: int) -> int:
        """Advance *rdd_id*'s epoch, invalidating worker-cached entries."""
        gen = self._cache_generations.get(rdd_id, 0) + 1
        self._cache_generations[rdd_id] = gen
        return gen

    # ------------------------------------------------------------------
    # pickling: tasks close over RDDs which reference the context.  On a
    # worker only `config` is ever consulted, so ship a stub that keeps
    # the config and raises if driver-only machinery is touched.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {"config": self.config}

    def __setstate__(self, state):
        self.config = state["config"]
        self.event_bus = EventBus(enabled=False)  # workers never post
        self.flight_recorder = None
        self.shuffle_manager = None  # workers read shuffles via TaskEnv
        self.block_store = None
        self.metrics_hub = None
        self.metrics = None
        self.accumulator_registry = None
        self._scheduler = None
        self._rdd_ids = itertools.count()
        self._cache_generations = {}
        self._lock = lockorder.OrderedLock("Context._lock")
        self._executor = None
        self._stopped = True  # any action attempt on a worker fails fast

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "stopped" if self._stopped else "running"
        return f"Context(mode={self.config.mode!r}, parallelism={self.default_parallelism}, {state})"
