"""Accumulators: write-only task-side counters merged at the driver.

Tasks call ``acc.add(x)``; the executor collects each task's local deltas
and the scheduler folds them into the driver-side value exactly once per
*successful* task (retried failures do not double count), matching Spark's
guarantee for actions.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Dict, Generic, Optional, TypeVar

from repro.engine.lockorder import OrderedLock

__all__ = ["Accumulator", "AccumulatorRegistry"]

T = TypeVar("T")

_ids = itertools.count()
_ids_lock = OrderedLock("_ids_lock")

# Task-local staging area: {acc_id: (zero, op, local_value)} for the task
# currently running on this thread.
_TASK_LOCAL = threading.local()


def _next_id() -> int:
    with _ids_lock:
        return next(_ids)


class Accumulator(Generic[T]):
    """A commutative, associative driver-side aggregate.

    Parameters
    ----------
    zero:
        Identity element.
    op:
        Binary merge ``op(current, delta) -> new``.  Defaults to ``+``.
    """

    def __init__(self, zero: T, op: Optional[Callable[[T, T], T]] = None, name: str = "") -> None:
        self.id = _next_id()
        self.zero = zero
        self.op = op or (lambda a, b: a + b)
        self.name = name or f"acc-{self.id}"
        self._value = zero
        self._lock = OrderedLock("Accumulator._lock")

    @property
    def value(self) -> T:
        """Driver-side merged value."""
        with self._lock:
            return self._value

    def add(self, delta: T) -> None:
        """Record a task-side contribution (or driver-side if no task)."""
        staging = getattr(_TASK_LOCAL, "staging", None)
        if staging is not None:
            if self.id in staging:
                zero, op, cur = staging[self.id]
            else:
                # Fresh local accumulator: own copy of the zero so ops
                # that mutate in place cannot corrupt the shared one.
                import copy

                zero, op, cur = self.zero, self.op, copy.deepcopy(self.zero)
            staging[self.id] = (zero, op, op(cur, delta))
        else:
            with self._lock:
                self._value = self.op(self._value, delta)

    def _merge(self, delta: T) -> None:
        with self._lock:
            self._value = self.op(self._value, delta)

    def reset(self) -> None:
        with self._lock:
            self._value = self.zero

    # Accumulators pickle as stubs carrying (id, zero, op); the op must
    # travel too — workers fold their *local* deltas with it before the
    # driver merges.  A `+`-placeholder here would silently turn e.g. a
    # max-accumulator into a sum on process workers.
    def __getstate__(self):
        from repro.engine import closure

        try:
            op_bytes = closure.serialize(self.op)
        except Exception:
            op_bytes = None  # fall back to + on the worker
        return (self.id, self.zero, self.name, op_bytes)

    def __setstate__(self, state):
        from repro.engine import closure

        self.id, self.zero, self.name, op_bytes = state
        if op_bytes is not None:
            self.op = closure.deserialize(op_bytes)
        else:  # pragma: no cover - unpicklable op
            self.op = lambda a, b: a + b
        self._value = self.zero
        self._lock = OrderedLock("Accumulator._lock")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Accumulator({self.name}, value={self._value!r})"


class AccumulatorRegistry:
    """Driver-side registry so the scheduler can merge deltas by id."""

    def __init__(self) -> None:
        self._accs: Dict[int, Accumulator] = {}
        self._lock = OrderedLock("AccumulatorRegistry._lock")

    def register(self, acc: Accumulator) -> None:
        with self._lock:
            self._accs[acc.id] = acc

    def merge_deltas(self, deltas: Dict[int, object]) -> None:
        with self._lock:
            for acc_id, delta in deltas.items():
                acc = self._accs.get(acc_id)
                if acc is not None:
                    acc._merge(delta)


def open_task_staging() -> Dict[int, tuple]:
    """Install a fresh staging dict for the current task thread."""
    staging: Dict[int, tuple] = {}
    _TASK_LOCAL.staging = staging
    return staging


def close_task_staging() -> Dict[int, object]:
    """Tear down staging and return {acc_id: delta} for shipping."""
    staging = getattr(_TASK_LOCAL, "staging", None) or {}
    _TASK_LOCAL.staging = None
    return {acc_id: val for acc_id, (_z, _op, val) in staging.items()}
