"""The engine's listener bus (the ``SparkListener`` analogue).

Every observable engine transition — job/stage/task lifecycle, task
retries, shuffle writes and fetches, cache hits/misses/evictions — is a
dataclass posted to the context's :class:`EventBus`.  Observers
subclass :class:`EngineListener` and override the hooks they care about;
:meth:`EngineListener.on_event` dispatches by event type.

Design constraints, in order:

1. **Zero cost when idle.**  Emission sites guard with ``if bus:`` —
   :class:`EventBus` is falsy when no listener is registered (or events
   are disabled by config), so event objects are never even constructed
   on the hot path of an unobserved context.
2. **Listeners cannot kill jobs.**  A listener raising inside a hook is
   recorded on the bus (``dropped_errors`` / ``last_error``) and
   swallowed; the job proceeds.
3. **Thread-safe posting.**  Thread-mode tasks emit concurrently; the
   bus serializes delivery, so a listener sees a consistent stream.

Every event additionally carries correlation metadata stamped at
construction from :mod:`repro.engine.tracing`: the originating
``trace_id``/``span_id`` (empty outside a trace scope) and the SBGT
``phase`` the emitting code was tagged with, plus a wall-clock epoch
view (:attr:`EngineEvent.wall`) that orders events across processes
where the raw ``perf_counter`` stamp cannot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Type

from repro.engine.lockorder import OrderedLock
from repro.engine.tracing import (
    EPOCH_OFFSET,
    TraceContext,
    _current_trace_for_event,
    current_phase,
)

__all__ = [
    "EngineEvent",
    "JobStart",
    "JobEnd",
    "StageStart",
    "StageEnd",
    "TaskStart",
    "TaskEnd",
    "TaskRetry",
    "ShuffleWrite",
    "ShuffleFetch",
    "CacheHit",
    "CacheMiss",
    "CacheEvict",
    "LockOrderViolation",
    "EngineListener",
    "EventBus",
    "RecordingListener",
    "register_event_type",
]


@dataclass
class EngineEvent:
    """Base of every bus event; ``time`` is a ``perf_counter`` stamp.

    ``trace`` and ``phase`` are stamped automatically from the active
    :func:`~repro.engine.tracing.trace_scope` / ``phase_scope`` when the
    event is constructed; both are empty for uncorrelated work.

    Events are plain (non-frozen) dataclasses on purpose: the always-on
    flight recorder makes event construction a hot path, and a frozen
    dataclass ``__init__`` costs ~4x (every field lands via
    ``object.__setattr__``).  Treat instances as immutable — they are
    shared by every listener on the bus.
    """

    time: float = field(default_factory=time.perf_counter, init=False, compare=False)
    trace: Optional[TraceContext] = field(
        default_factory=_current_trace_for_event, init=False, compare=False, repr=False
    )
    phase: str = field(default_factory=current_phase, init=False, compare=False)

    @property
    def kind(self) -> str:
        """Lower-snake event name (``job_start``, ``task_retry``, …)."""
        return _KIND_BY_TYPE[type(self)]

    @property
    def wall(self) -> float:
        """Wall-clock epoch seconds of the event (orders across processes)."""
        return self.time + EPOCH_OFFSET

    @property
    def trace_id(self) -> str:
        """Originating trace id ("" when emitted outside any scope)."""
        return self.trace.trace_id if self.trace is not None else ""

    @property
    def span_id(self) -> str:
        """Innermost span id at emission ("" outside any scope)."""
        return self.trace.span_id if self.trace is not None else ""

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form (used by trace exporters)."""
        out: Dict[str, Any] = {
            "kind": self.kind,
            "time": self.time,
            "wall": self.wall,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }
        for f in fields(self):
            if f.name not in ("time", "trace"):
                out[f.name] = getattr(self, f.name)
        return out


@dataclass
class JobStart(EngineEvent):
    """An action entered the scheduler."""

    job_id: int
    description: str = ""


@dataclass
class JobEnd(EngineEvent):
    """The scheduler finished (or abandoned) a job."""

    job_id: int
    wall_s: float
    succeeded: bool = True


@dataclass
class StageStart(EngineEvent):
    """A stage's task wave is about to be submitted."""

    stage_id: int
    stage_kind: str  # "shuffle-map" | "result"
    num_tasks: int
    job_id: int


@dataclass
class StageEnd(EngineEvent):
    """Every task of the stage has reported."""

    stage_id: int
    stage_kind: str
    wall_s: float
    job_id: int


@dataclass
class TaskStart(EngineEvent):
    """One attempt of one task is starting (attempt counts from 1)."""

    stage_id: int
    partition: int
    attempt: int = 1


@dataclass
class TaskEnd(EngineEvent):
    """A task attempt succeeded.

    ``t0_wall`` is the wall-clock epoch at which the attempt *started*,
    stamped inside the worker (thread or forked process), so exporters
    can place the task slice on the true timeline even though the event
    itself is posted from the driver.  ``worker`` identifies the
    executing worker as ``"<pid>/<thread-name>"``.

    ``cpu_s`` / ``rss_peak_kb`` / ``gc_collections`` are the task's
    resource telemetry, measured where the task ran (thread CPU clock,
    ``getrusage`` peak-RSS growth, GC passes) and relayed through the
    :class:`~repro.engine.executor.TaskResult` in process mode — the
    same channel the cache events ride.
    """

    stage_id: int
    partition: int
    wall_s: float
    attempts: int = 1
    t0_wall: float = 0.0
    worker: str = ""
    cpu_s: float = 0.0
    rss_peak_kb: int = 0
    gc_collections: int = 0


@dataclass
class TaskRetry(EngineEvent):
    """A task attempt failed (the driver may resubmit it)."""

    stage_id: int
    partition: int
    attempt: int
    error: str = ""


@dataclass
class ShuffleWrite(EngineEvent):
    """A map task registered its output buckets.

    ``buffer_bytes`` counts the NumPy payload carried by the buckets —
    the bytes that travel out-of-band (raw ``PickleBuffer``\\ s, not
    in-band pickle bytes) when the shuffle is shipped to a process-mode
    worker.
    """

    shuffle_id: int
    map_id: int
    records: int = 0
    buffer_bytes: int = 0


@dataclass
class ShuffleFetch(EngineEvent):
    """A reduce-side read of one shuffle partition.

    ``buffer_bytes`` mirrors :class:`ShuffleWrite`: the out-of-band
    NumPy payload of the fetched records.
    """

    shuffle_id: int
    reduce_id: int
    buffer_bytes: int = 0


@dataclass
class CacheHit(EngineEvent):
    """A cached partition was served from the block store."""

    rdd_id: int
    partition: int


@dataclass
class CacheMiss(EngineEvent):
    """A cache()-ed partition had to be (re)computed."""

    rdd_id: int
    partition: int


@dataclass
class CacheEvict(EngineEvent):
    """LRU pressure dropped a cached partition."""

    rdd_id: int
    partition: int
    size_bytes: int = 0


@dataclass
class LockOrderViolation(EngineEvent):
    """The runtime lock sanitizer observed an out-of-order acquisition.

    Posted (in ``record`` mode) by the context's violation hook; the
    fields mirror :class:`repro.engine.lockorder.ViolationRecord`.
    """

    acquired: str
    acquired_level: int
    held: str
    held_level: int
    thread: str = ""


_KIND_BY_TYPE: Dict[Type[EngineEvent], str] = {
    JobStart: "job_start",
    JobEnd: "job_end",
    StageStart: "stage_start",
    StageEnd: "stage_end",
    TaskStart: "task_start",
    TaskEnd: "task_end",
    TaskRetry: "task_retry",
    ShuffleWrite: "shuffle_write",
    ShuffleFetch: "shuffle_fetch",
    CacheHit: "cache_hit",
    CacheMiss: "cache_miss",
    CacheEvict: "cache_evict",
    LockOrderViolation: "lock_order_violation",
}

_HANDLER_BY_TYPE: Dict[Type[EngineEvent], str] = {
    cls: f"on_{kind}" for cls, kind in _KIND_BY_TYPE.items()
}


def register_event_type(cls: Type[EngineEvent], kind: str) -> Type[EngineEvent]:
    """Register an :class:`EngineEvent` subclass defined outside this module.

    Upper layers (e.g. the serving front door) ride the same bus as the
    engine but post their own event vocabulary.  Registration gives the
    subclass a ``kind`` string and an ``on_<kind>`` dispatch slot, so
    listeners that define that hook receive it through the normal
    :meth:`EngineListener.on_event` path while listeners that don't
    stay untouched.  Registering the same class twice with the same
    kind is a no-op; re-using a kind for a different class is an error
    (it would make ``kind`` ambiguous in exported traces).
    """
    if not (isinstance(cls, type) and issubclass(cls, EngineEvent)):
        raise TypeError(f"{cls!r} is not an EngineEvent subclass")
    current = _KIND_BY_TYPE.get(cls)
    if current is not None:
        if current != kind:
            raise ValueError(f"{cls.__name__} already registered as {current!r}")
        return cls
    if kind in _KIND_BY_TYPE.values():
        raise ValueError(f"event kind {kind!r} already taken")
    _KIND_BY_TYPE[cls] = kind
    _HANDLER_BY_TYPE[cls] = f"on_{kind}"
    return cls


class EngineListener:
    """Override the hooks you care about; defaults are all no-ops.

    ``on_event`` receives *every* event and dispatches to the typed
    hooks — override it instead for a firehose view (recording,
    forwarding, tracing).
    """

    def on_event(self, event: EngineEvent) -> None:
        """Dispatch *event* to its typed ``on_<kind>`` hook.

        Events of registered extension types (see
        :func:`register_event_type`) dispatch the same way; a listener
        without the matching hook simply ignores them.
        """
        handler = _HANDLER_BY_TYPE.get(type(event))
        if handler is not None:
            hook = getattr(self, handler, None)
            if hook is not None:
                hook(event)

    def on_job_start(self, event: JobStart) -> None:
        """Hook: a job entered the scheduler."""

    def on_job_end(self, event: JobEnd) -> None:
        """Hook: a job finished or failed."""

    def on_stage_start(self, event: StageStart) -> None:
        """Hook: a stage wave is being submitted."""

    def on_stage_end(self, event: StageEnd) -> None:
        """Hook: a stage completed."""

    def on_task_start(self, event: TaskStart) -> None:
        """Hook: a task attempt is starting."""

    def on_task_end(self, event: TaskEnd) -> None:
        """Hook: a task attempt succeeded."""

    def on_task_retry(self, event: TaskRetry) -> None:
        """Hook: a task attempt failed."""

    def on_shuffle_write(self, event: ShuffleWrite) -> None:
        """Hook: map output registered."""

    def on_shuffle_fetch(self, event: ShuffleFetch) -> None:
        """Hook: reduce-side shuffle read."""

    def on_cache_hit(self, event: CacheHit) -> None:
        """Hook: block store hit."""

    def on_cache_miss(self, event: CacheMiss) -> None:
        """Hook: block store miss."""

    def on_cache_evict(self, event: CacheEvict) -> None:
        """Hook: block store eviction."""

    def on_lock_order_violation(self, event: LockOrderViolation) -> None:
        """Hook: the lock sanitizer recorded an out-of-order acquisition."""


class EventBus:
    """Fan-out of engine events to registered listeners.

    The bus is **falsy** while no listener is registered (or the
    context was configured with ``enable_events=False``); emitters use
    that to skip event construction entirely, which is what keeps the
    no-listener overhead unmeasurable.
    """

    __slots__ = ("_listeners", "_lock", "enabled", "dropped_errors", "last_error")

    def __init__(self, enabled: bool = True) -> None:
        self._listeners: List[EngineListener] = []
        # Reentrant: a listener may itself trigger an emitting code path
        # (e.g. a tracer reading a cached RDD) without deadlocking.
        self._lock = OrderedLock("EventBus._lock", reentrant=True)
        self.enabled = bool(enabled)
        #: Count of listener exceptions swallowed during delivery.
        self.dropped_errors = 0
        self.last_error: Optional[BaseException] = None

    def __bool__(self) -> bool:
        return self.enabled and bool(self._listeners)

    def __len__(self) -> int:
        return len(self._listeners)

    def register(self, listener: EngineListener) -> EngineListener:
        """Subscribe *listener*; returns it for chaining."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)
        return listener

    def unregister(self, listener: EngineListener) -> None:
        """Unsubscribe *listener* (no-op if absent)."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def clear(self) -> None:
        """Drop every listener."""
        with self._lock:
            self._listeners.clear()

    def post(self, event: EngineEvent) -> None:
        """Deliver *event* to every listener, serialized and fail-safe."""
        if not self:
            return
        with self._lock:
            for listener in self._listeners:
                try:
                    listener.on_event(event)
                except Exception as exc:  # noqa: BLE001 - listener bugs must not kill jobs
                    self.dropped_errors += 1
                    self.last_error = exc


class RecordingListener(EngineListener):
    """Append-only capture of the event stream (tests, debugging)."""

    def __init__(self) -> None:
        self._events: List[EngineEvent] = []
        self._lock = OrderedLock("RecordingListener._lock")

    def on_event(self, event: EngineEvent) -> None:
        """Record the event (thread-safe)."""
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> List[EngineEvent]:
        """Snapshot of everything recorded so far."""
        with self._lock:
            return list(self._events)

    def of_type(self, *types: Type[EngineEvent]) -> List[EngineEvent]:
        """Recorded events of the given type(s), in arrival order."""
        return [e for e in self.events if isinstance(e, types)]

    def kinds(self) -> List[str]:
        """The recorded stream as a list of kind strings."""
        return [e.kind for e in self.events]

    def clear(self) -> None:
        """Forget everything recorded."""
        with self._lock:
            self._events.clear()
