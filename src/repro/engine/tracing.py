"""Trace-context propagation: correlate engine events with their origin.

A :class:`TraceContext` names one logical operation end-to-end — a serve
request, a CLI screen, a notebook cell — with a ``trace_id``, plus the
``span_id``/``parent_id`` pair that nests sub-operations (a screen stage
inside a request) under it.  The active context lives in a
:class:`contextvars.ContextVar`, so it follows ordinary call stacks and
``async`` tasks for free; thread-pool executors copy the context
explicitly per task (see :class:`~repro.engine.executor.ThreadExecutor`),
and process workers never post events, so every emission site sees the
right context without threading arguments through the engine.

Every :class:`~repro.engine.listener.EngineEvent` constructed while a
scope is open is stamped with the trace/span ids and the current SBGT
phase (see :func:`phase_scope`); unstamped events carry empty strings.
Stamping costs two ``ContextVar.get`` calls per event and nothing at all
while the bus is falsy, preserving the zero-cost-when-unobserved
invariant.

Cross-process timestamps: ``EngineEvent.time`` is ``perf_counter``,
whose origin is undefined per process.  :data:`EPOCH_OFFSET` is the
per-process ``time.time() - time.perf_counter()`` delta captured at
import, which converts monotonic stamps into wall-clock epoch seconds
(``EngineEvent.wall``) that *do* order across processes — exporters use
those.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "EPOCH_OFFSET",
    "TraceContext",
    "new_trace_id",
    "current_trace",
    "current_trace_id",
    "current_span_id",
    "current_phase",
    "trace_scope",
    "ensure_trace",
    "phase_scope",
]

#: Per-process ``time.time() - time.perf_counter()``: add it to a
#: ``perf_counter`` stamp taken in *this* process to get epoch seconds.
EPOCH_OFFSET = time.time() - time.perf_counter()


@dataclass(frozen=True)
class TraceContext:
    """One node of the correlation tree.

    ``trace_id`` is shared by everything a root operation caused;
    ``span_id`` names this scope; ``parent_id`` is the enclosing scope's
    span (empty at the root).  ``name`` is a human label for debug
    output ("/screen", "screen-stage-3", …).
    """

    trace_id: str
    span_id: str
    parent_id: str = ""
    name: str = ""

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
        }


_trace_var: ContextVar[Optional[TraceContext]] = ContextVar("repro_trace", default=None)
_phase_var: ContextVar[str] = ContextVar("repro_phase", default="")


def new_trace_id() -> str:
    """A fresh 16-hex-char id (unique enough for one deployment)."""
    return uuid.uuid4().hex[:16]


def current_trace() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, if any scope is open."""
    return _trace_var.get()


def current_trace_id() -> str:
    """The active trace id ("" when no scope is open)."""
    tc = _trace_var.get()
    return tc.trace_id if tc is not None else ""


def current_span_id() -> str:
    """The active span id ("" when no scope is open)."""
    tc = _trace_var.get()
    return tc.span_id if tc is not None else ""


def current_phase() -> str:
    """The SBGT phase of the innermost open :func:`phase_scope` ("")."""
    return _phase_var.get()


@contextmanager
def trace_scope(
    trace_id: Optional[str] = None, name: str = "", parent_id: Optional[str] = None
) -> Iterator[TraceContext]:
    """Open a trace scope; events constructed inside are stamped with it.

    With no arguments this opens a *child* span of the current scope
    (same trace_id, fresh span_id) or a brand-new root trace when none
    is active.  Passing ``trace_id`` explicitly (e.g. from an
    ``X-Trace-Id`` request header) forces a root with that id.
    """
    enclosing = _trace_var.get()
    if trace_id is None:
        if enclosing is not None:
            trace_id = enclosing.trace_id
            if parent_id is None:
                parent_id = enclosing.span_id
        else:
            trace_id = new_trace_id()
    tc = TraceContext(trace_id, new_trace_id(), parent_id or "", name)
    token = _trace_var.set(tc)
    try:
        yield tc
    finally:
        _trace_var.reset(token)


@contextmanager
def ensure_trace(name: str = "") -> Iterator[TraceContext]:
    """Yield the active context, opening a root scope only if none exists.

    Lets batch entry points (``SBGTSession.run_screen``, the CLI) give
    their engine activity a queryable trace_id without re-rooting work
    that is already correlated (a serve request).
    """
    tc = _trace_var.get()
    if tc is not None:
        yield tc
        return
    with trace_scope(name=name) as fresh:
        yield fresh


class _PhaseScope:
    """Reusable, allocation-light context manager for phase stamping."""

    __slots__ = ("phase", "_token")

    def __init__(self, phase: str) -> None:
        self.phase = phase
        self._token = None

    def __enter__(self) -> None:
        self._token = _phase_var.set(self.phase)
        return None

    def __exit__(self, *exc) -> None:
        _phase_var.reset(self._token)
        return None


def phase_scope(phase: str) -> _PhaseScope:
    """Stamp events constructed inside with the given SBGT phase.

    This is the engine-level half of :func:`repro.obs.trace_phase`: it
    only sets the contextvar, no span accounting.  Instrumented call
    sites use it when no :class:`~repro.obs.Tracer` is installed so the
    always-on flight recorder still sees phase-attributed events.
    """
    return _PhaseScope(phase)


# Internal: default_factory hook for EngineEvent (single ContextVar read).
def _current_trace_for_event() -> Optional[TraceContext]:
    return _trace_var.get()


def set_phase(phase: str):
    """Low-level phase set returning the reset token (Tracer internals)."""
    return _phase_var.set(phase)


def reset_phase(token) -> None:
    """Undo :func:`set_phase`."""
    _phase_var.reset(token)
