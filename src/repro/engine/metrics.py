"""Job / stage / task metrics.

The scheduler stamps every task with wall time and record counts and rolls
them up into :class:`StageMetrics` / :class:`JobMetrics`.  The benchmark
harness reads these to report scheduling overhead separately from kernel
time (the distinction the paper's Spark evaluation cares about).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

__all__ = [
    "TaskMetrics",
    "StageMetrics",
    "JobMetrics",
    "MetricsRegistry",
    "simulated_makespan",
    "simulated_stage_time",
]


def simulated_makespan(task_times_s: List[float], workers: int, per_task_overhead_s: float = 0.0) -> float:
    """Projected stage wall time on *workers* parallel executors.

    Greedy longest-processing-time (LPT) assignment of the measured task
    durations to ``workers`` slots; the makespan is the loaded slot's
    total.  This is how single-node task profiles are projected onto a
    cluster when physical cores are unavailable (the R4 substitution —
    see DESIGN.md).  ``per_task_overhead_s`` models per-task dispatch
    cost (serialization, scheduling RPC).
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    slots = [0.0] * workers
    for t in sorted(task_times_s, reverse=True):
        slot = min(range(workers), key=slots.__getitem__)
        slots[slot] += float(t) + per_task_overhead_s
    return max(slots) if slots else 0.0


def simulated_stage_time(stage: "StageMetrics", workers: int, per_task_overhead_s: float = 0.0) -> float:
    """Projected wall time of one recorded stage on *workers* executors."""
    return simulated_makespan([t.wall_s for t in stage.tasks], workers, per_task_overhead_s)


@dataclass
class TaskMetrics:
    stage_id: int
    partition: int
    wall_s: float = 0.0
    records_out: int = 0
    attempts: int = 1


@dataclass
class StageMetrics:
    stage_id: int
    kind: str  # "shuffle-map" | "result"
    num_tasks: int = 0
    wall_s: float = 0.0
    tasks: List[TaskMetrics] = field(default_factory=list)

    @property
    def task_time_s(self) -> float:
        return sum(t.wall_s for t in self.tasks)

    @property
    def max_task_s(self) -> float:
        return max((t.wall_s for t in self.tasks), default=0.0)

    @property
    def skew(self) -> float:
        """Max/mean task time — 1.0 is perfectly balanced partitions."""
        if not self.tasks:
            return 1.0
        mean = self.task_time_s / len(self.tasks)
        return self.max_task_s / mean if mean > 0 else 1.0


@dataclass
class JobMetrics:
    job_id: int
    description: str = ""
    wall_s: float = 0.0
    stages: List[StageMetrics] = field(default_factory=list)

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks for s in self.stages)

    @property
    def scheduling_overhead_s(self) -> float:
        """Job wall time not attributable to the critical stage path."""
        return max(0.0, self.wall_s - sum(s.wall_s for s in self.stages))

    def summary(self) -> Dict[str, float]:
        return {
            "wall_s": self.wall_s,
            "stages": float(len(self.stages)),
            "tasks": float(self.num_tasks),
            "task_time_s": sum(s.task_time_s for s in self.stages),
            "overhead_s": self.scheduling_overhead_s,
        }


class MetricsRegistry:
    """Thread-safe sink for completed job metrics."""

    def __init__(self, keep_last: int = 256) -> None:
        self._jobs: List[JobMetrics] = []
        self._keep = keep_last
        self._lock = threading.Lock()

    def record(self, job: JobMetrics) -> None:
        with self._lock:
            self._jobs.append(job)
            if len(self._jobs) > self._keep:
                del self._jobs[: len(self._jobs) - self._keep]

    @property
    def jobs(self) -> List[JobMetrics]:
        with self._lock:
            return list(self._jobs)

    def last(self) -> Optional[JobMetrics]:
        with self._lock:
            return self._jobs[-1] if self._jobs else None

    def total_task_time(self) -> float:
        with self._lock:
            return sum(s.task_time_s for j in self._jobs for s in j.stages)

    def dump_jsonl(self, path: Union[str, os.PathLike]) -> int:
        """Write one JSON line per recorded job; returns the line count.

        The layout mirrors the in-memory hierarchy (job → stages →
        tasks) so a trace viewer can reconstruct the stage tree without
        this package installed.
        """
        jobs = self.jobs
        with open(path, "w", encoding="utf-8") as fh:
            for job in jobs:
                fh.write(
                    json.dumps(
                        {
                            "record": "job",
                            "job_id": job.job_id,
                            "description": job.description,
                            "wall_s": job.wall_s,
                            "stages": [
                                {
                                    "stage_id": s.stage_id,
                                    "kind": s.kind,
                                    "wall_s": s.wall_s,
                                    "num_tasks": s.num_tasks,
                                    "tasks": [
                                        {
                                            "partition": t.partition,
                                            "wall_s": t.wall_s,
                                            "attempts": t.attempts,
                                        }
                                        for t in s.tasks
                                    ],
                                }
                                for s in job.stages
                            ],
                        }
                    )
                    + "\n"
                )
        return len(jobs)

    def clear(self) -> None:
        with self._lock:
            self._jobs.clear()
