"""Job / stage / task metrics.

The scheduler stamps every task with wall time and record counts and rolls
them up into :class:`StageMetrics` / :class:`JobMetrics`.  The benchmark
harness reads these to report scheduling overhead separately from kernel
time (the distinction the paper's Spark evaluation cares about).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.engine.lockorder import OrderedLock

__all__ = [
    "TaskMetrics",
    "StageMetrics",
    "JobMetrics",
    "MetricsRegistry",
    "simulated_makespan",
    "simulated_stage_time",
]


def simulated_makespan(task_times_s: List[float], workers: int, per_task_overhead_s: float = 0.0) -> float:
    """Projected stage wall time on *workers* parallel executors.

    Greedy longest-processing-time (LPT) assignment of the measured task
    durations to ``workers`` slots; the makespan is the loaded slot's
    total.  This is how single-node task profiles are projected onto a
    cluster when physical cores are unavailable (the R4 substitution —
    see DESIGN.md).  ``per_task_overhead_s`` models per-task dispatch
    cost (serialization, scheduling RPC).
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    slots = [0.0] * workers
    for t in sorted(task_times_s, reverse=True):
        slot = min(range(workers), key=slots.__getitem__)
        slots[slot] += float(t) + per_task_overhead_s
    return max(slots) if slots else 0.0


def simulated_stage_time(stage: "StageMetrics", workers: int, per_task_overhead_s: float = 0.0) -> float:
    """Projected wall time of one recorded stage on *workers* executors."""
    return simulated_makespan([t.wall_s for t in stage.tasks], workers, per_task_overhead_s)


@dataclass
class TaskMetrics:
    stage_id: int
    partition: int
    wall_s: float = 0.0
    records_out: int = 0
    attempts: int = 1
    #: CPU seconds on the executing thread's CPU clock.
    cpu_s: float = 0.0
    #: Growth of the executing process's peak RSS during the task, KiB.
    rss_peak_kb: int = 0
    #: GC collection passes that ran during the task.
    gc_collections: int = 0


@dataclass
class StageMetrics:
    stage_id: int
    kind: str  # "shuffle-map" | "result"
    num_tasks: int = 0
    wall_s: float = 0.0
    tasks: List[TaskMetrics] = field(default_factory=list)

    @property
    def task_time_s(self) -> float:
        return sum(t.wall_s for t in self.tasks)

    @property
    def max_task_s(self) -> float:
        return max((t.wall_s for t in self.tasks), default=0.0)

    @property
    def cpu_time_s(self) -> float:
        return sum(t.cpu_s for t in self.tasks)

    @property
    def rss_peak_kb(self) -> int:
        """Largest per-task peak-RSS growth in the stage, KiB."""
        return max((t.rss_peak_kb for t in self.tasks), default=0)

    @property
    def gc_collections(self) -> int:
        return sum(t.gc_collections for t in self.tasks)

    @property
    def skew(self) -> float:
        """Max/mean task time — 1.0 is perfectly balanced partitions."""
        if not self.tasks:
            return 1.0
        mean = self.task_time_s / len(self.tasks)
        return self.max_task_s / mean if mean > 0 else 1.0


@dataclass
class JobMetrics:
    job_id: int
    description: str = ""
    wall_s: float = 0.0
    stages: List[StageMetrics] = field(default_factory=list)
    #: Originating trace id ("" when the job ran outside a trace scope).
    trace_id: str = ""
    #: Wall-clock epoch seconds at job start/end (0.0 = not stamped);
    #: derived from perf_counter + tracing.EPOCH_OFFSET so JSONL rollups
    #: join against tracer and flight-recorder output.
    t0_wall: float = 0.0
    t1_wall: float = 0.0
    succeeded: bool = True

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks for s in self.stages)

    @property
    def scheduling_overhead_s(self) -> float:
        """Job wall time not attributable to the critical stage path."""
        return max(0.0, self.wall_s - sum(s.wall_s for s in self.stages))

    def summary(self) -> Dict[str, float]:
        return {
            "wall_s": self.wall_s,
            "stages": float(len(self.stages)),
            "tasks": float(self.num_tasks),
            "task_time_s": sum(s.task_time_s for s in self.stages),
            "overhead_s": self.scheduling_overhead_s,
            "cpu_s": sum(s.cpu_time_s for s in self.stages),
            "rss_peak_kb": float(max((s.rss_peak_kb for s in self.stages), default=0)),
            "gc_collections": float(sum(s.gc_collections for s in self.stages)),
        }


class MetricsRegistry:
    """Thread-safe sink for completed job metrics.

    When bound to a :class:`~repro.obs.metrics.MetricsHub` (duck-typed;
    this module never imports the obs layer), every recorded job also
    rolls into the hub's labelled ``repro_engine_*`` families, so the
    Prometheus exposition and the serve ``/metrics`` document see job,
    task, CPU, RSS and GC totals in every executor mode — the registry
    is fed by the scheduler directly, bus or no bus.
    """

    def __init__(self, keep_last: int = 256, hub=None) -> None:
        self._jobs: List[JobMetrics] = []
        self._keep = keep_last
        self._lock = OrderedLock("MetricsRegistry._lock")
        self._hub = None
        if hub is not None:
            self.bind_hub(hub)

    def bind_hub(self, hub) -> None:
        """Publish job rollups into *hub* from now on."""
        self._hub = hub
        self._h_jobs = hub.counter(
            "repro_engine_jobs_total", "Completed engine jobs by outcome",
            labels=("status",),
        )
        self._h_job_seconds = hub.histogram(
            "repro_engine_job_seconds", "End-to-end job wall time"
        )
        self._h_tasks = hub.counter(
            "repro_engine_tasks_total", "Tasks that produced a result"
        )
        self._h_task_seconds = hub.histogram(
            "repro_engine_task_seconds", "Per-task wall time"
        )
        self._h_cpu = hub.counter(
            "repro_engine_task_cpu_seconds_total", "CPU seconds consumed by tasks"
        )
        self._h_gc = hub.counter(
            "repro_engine_task_gc_collections_total",
            "GC collection passes observed during tasks",
        )
        self._h_rss = hub.gauge(
            "repro_engine_task_rss_peak_kb",
            "Largest single-task peak-RSS growth seen, KiB",
        )
        self._h_overhead = hub.counter(
            "repro_engine_scheduler_overhead_seconds_total",
            "Job wall time outside the critical stage path",
        )

    def _publish(self, job: JobMetrics) -> None:
        self._h_jobs.labels(status="ok" if job.succeeded else "failed").inc()
        self._h_job_seconds.observe(job.wall_s, trace_id=job.trace_id or None)
        self._h_overhead.inc(job.scheduling_overhead_s)
        for stage in job.stages:
            for task in stage.tasks:
                self._h_tasks.inc()
                self._h_task_seconds.observe(task.wall_s)
                self._h_cpu.inc(task.cpu_s)
                self._h_gc.inc(task.gc_collections)
                self._h_rss.set_max(task.rss_peak_kb)

    def record(self, job: JobMetrics) -> None:
        with self._lock:
            self._jobs.append(job)
            if len(self._jobs) > self._keep:
                del self._jobs[: len(self._jobs) - self._keep]
        if self._hub is not None:
            self._publish(job)

    @property
    def jobs(self) -> List[JobMetrics]:
        with self._lock:
            return list(self._jobs)

    def last(self) -> Optional[JobMetrics]:
        with self._lock:
            return self._jobs[-1] if self._jobs else None

    def total_task_time(self) -> float:
        with self._lock:
            return sum(s.task_time_s for j in self._jobs for s in j.stages)

    def dump_jsonl(self, path: Union[str, os.PathLike]) -> int:
        """Write one JSON line per recorded job; returns the line count.

        The layout mirrors the in-memory hierarchy (job → stages →
        tasks) so a trace viewer can reconstruct the stage tree without
        this package installed.  Each job line carries its wall-clock
        start/end (``t0_wall``/``t1_wall``, epoch seconds via
        ``tracing.EPOCH_OFFSET``) and originating ``trace_id``, so these
        rollups join against tracer and flight-recorder output.
        """
        jobs = self.jobs
        with open(path, "w", encoding="utf-8") as fh:
            for job in jobs:
                fh.write(
                    json.dumps(
                        {
                            "record": "job",
                            "job_id": job.job_id,
                            "description": job.description,
                            "wall_s": job.wall_s,
                            "t0_wall": job.t0_wall,
                            "t1_wall": job.t1_wall,
                            "trace_id": job.trace_id,
                            "stages": [
                                {
                                    "stage_id": s.stage_id,
                                    "kind": s.kind,
                                    "wall_s": s.wall_s,
                                    "num_tasks": s.num_tasks,
                                    "tasks": [
                                        {
                                            "partition": t.partition,
                                            "wall_s": t.wall_s,
                                            "attempts": t.attempts,
                                        }
                                        for t in s.tasks
                                    ],
                                }
                                for s in job.stages
                            ],
                        }
                    )
                    + "\n"
                )
        return len(jobs)

    def clear(self) -> None:
        with self._lock:
            self._jobs.clear()
