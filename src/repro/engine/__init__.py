"""A from-scratch Spark-like dataflow engine (the paper's substrate).

SBGT is written against Spark's RDD model.  This package reimplements
that model natively: lazy lineage, narrow/wide dependencies, a DAG
scheduler cutting stages at shuffles, hash/range partitioned shuffles
with map-side combining, broadcast variables, accumulators, an LRU
partition cache, and three executor backends (serial / threads /
processes).  See DESIGN.md for the substitution rationale.
"""

from repro.engine.accumulator import Accumulator
from repro.engine.broadcast import Broadcast
from repro.engine.config import EngineConfig
from repro.engine.context import Context
from repro.engine.errors import (
    ClosureSerializationError,
    ContextStoppedError,
    EngineError,
    JobFailedError,
    SerializationError,
    ShuffleFetchError,
    TaskFailedError,
)
from repro.engine.hll import HyperLogLog
from repro.engine.listener import EngineEvent, EngineListener, EventBus, RecordingListener
from repro.engine.rdd import RDD, StatCounter
from repro.engine.shuffle import HashPartitioner, Partitioner, RangePartitioner
from repro.engine.tracing import (
    TraceContext,
    current_trace,
    current_trace_id,
    ensure_trace,
    phase_scope,
    trace_scope,
)

__all__ = [
    "Context",
    "EngineConfig",
    "TraceContext",
    "trace_scope",
    "ensure_trace",
    "phase_scope",
    "current_trace",
    "current_trace_id",
    "RDD",
    "StatCounter",
    "HyperLogLog",
    "Broadcast",
    "Accumulator",
    "HashPartitioner",
    "RangePartitioner",
    "Partitioner",
    "EngineEvent",
    "EngineListener",
    "EventBus",
    "RecordingListener",
    "EngineError",
    "JobFailedError",
    "TaskFailedError",
    "SerializationError",
    "ClosureSerializationError",
    "ShuffleFetchError",
    "ContextStoppedError",
]
