"""LRU block store backing ``RDD.cache()``.

Cached partitions are lists of records (often single NumPy-block records
in SBGT, so "list of one array").  Sizes are estimated with
``sys.getsizeof`` plus ``nbytes`` for NumPy payloads; the store evicts
least-recently-used whole partitions when over budget, never splitting a
partition.

Entries carry a **cache generation**: the per-RDD epoch the scheduler
stamps into process-mode task payloads (see ``Context.cache_generation``).
The driver store invalidates eagerly (``unpersist`` calls ``drop_rdd``),
so its generations always match; worker-resident stores have no channel
back to the driver, so a ``get`` carrying a newer generation is how a
worker learns an entry went stale — the entry is purged (counted as an
eviction) and the access is a miss.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.listener import CacheEvict, CacheHit, CacheMiss, EventBus
from repro.engine.lockorder import OrderedLock

__all__ = ["BlockStore"]

BlockKey = Tuple[int, int]  # (rdd_id, partition_id)


def _estimate_size(records: List[Any]) -> int:
    total = sys.getsizeof(records)
    for r in records[:1000]:  # sample cap: huge partitions estimate from prefix
        if isinstance(r, np.ndarray):
            total += r.nbytes
        elif isinstance(r, tuple) and any(isinstance(x, np.ndarray) for x in r):
            total += sum(x.nbytes if isinstance(x, np.ndarray) else sys.getsizeof(x) for x in r)
        else:
            total += sys.getsizeof(r)
    if len(records) > 1000:
        total = int(total * len(records) / 1000)
    return total


class BlockStore:
    """Thread-safe LRU cache of materialized RDD partitions."""

    def __init__(self, capacity_bytes: int, bus: Optional[EventBus] = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._blocks: "OrderedDict[BlockKey, List[Any]]" = OrderedDict()
        self._sizes: Dict[BlockKey, int] = {}
        self._gens: Dict[BlockKey, int] = {}
        self._used = 0
        self._lock = OrderedLock("BlockStore._lock")
        self._bus = bus
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: BlockKey, generation: int = 0) -> Optional[List[Any]]:
        stale_size = 0
        with self._lock:
            block = self._blocks.get(key)
            if block is not None and self._gens.get(key, 0) != generation:
                # Stale generation: the driver unpersisted this RDD since
                # the entry was cached.  Purge and treat as a miss.
                stale_size = self._sizes.pop(key)
                self._gens.pop(key, None)
                del self._blocks[key]
                self._used -= stale_size
                self.evictions += 1
                block = None
            if block is None:
                self.misses += 1
            else:
                self._blocks.move_to_end(key)
                self.hits += 1
        bus = self._bus
        if bus:
            if stale_size:
                bus.post(CacheEvict(key[0], key[1], stale_size))
            bus.post(CacheMiss(*key) if block is None else CacheHit(*key))
        return block

    def put(self, key: BlockKey, records: List[Any], generation: int = 0) -> None:
        size = _estimate_size(records)
        evicted: List[tuple] = []
        with self._lock:
            if key in self._blocks:
                self._used -= self._sizes[key]
                del self._blocks[key]
            # A single partition bigger than the whole budget is stored
            # anyway (dropping it would livelock callers); it just evicts
            # everything else.
            while self._used + size > self.capacity_bytes and self._blocks:
                old_key, _ = self._blocks.popitem(last=False)
                old_size = self._sizes.pop(old_key)
                self._gens.pop(old_key, None)
                self._used -= old_size
                self.evictions += 1
                evicted.append((old_key, old_size))
            self._blocks[key] = records
            self._sizes[key] = size
            self._gens[key] = generation
            self._used += size
        bus = self._bus
        if bus:
            for (rdd_id, partition), old_size in evicted:
                bus.post(CacheEvict(rdd_id, partition, old_size))

    def drop_rdd(self, rdd_id: int) -> int:
        """Evict every cached partition of one RDD; returns count dropped."""
        evicted: List[Tuple[BlockKey, int]] = []
        with self._lock:
            keys = [k for k in self._blocks if k[0] == rdd_id]
            for k in keys:
                size = self._sizes.pop(k)
                self._gens.pop(k, None)
                self._used -= size
                del self._blocks[k]
                self.evictions += 1
                evicted.append((k, size))
        bus = self._bus
        if bus:
            for (rid, partition), size in evicted:
                bus.post(CacheEvict(rid, partition, size))
        return len(evicted)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._sizes.clear()
            self._gens.clear()
            self._used = 0

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)
