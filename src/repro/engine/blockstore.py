"""LRU block store backing ``RDD.cache()``.

Cached partitions are lists of records (often single NumPy-block records
in SBGT, so "list of one array").  Sizes are estimated with
``sys.getsizeof`` plus ``nbytes`` for NumPy payloads; the store evicts
least-recently-used whole partitions when over budget, never splitting a
partition.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.listener import CacheEvict, CacheHit, CacheMiss, EventBus

__all__ = ["BlockStore"]

BlockKey = Tuple[int, int]  # (rdd_id, partition_id)


def _estimate_size(records: List[Any]) -> int:
    total = sys.getsizeof(records)
    for r in records[:1000]:  # sample cap: huge partitions estimate from prefix
        if isinstance(r, np.ndarray):
            total += r.nbytes
        elif isinstance(r, tuple) and any(isinstance(x, np.ndarray) for x in r):
            total += sum(x.nbytes if isinstance(x, np.ndarray) else sys.getsizeof(x) for x in r)
        else:
            total += sys.getsizeof(r)
    if len(records) > 1000:
        total = int(total * len(records) / 1000)
    return total


class BlockStore:
    """Thread-safe LRU cache of materialized RDD partitions."""

    def __init__(self, capacity_bytes: int, bus: Optional[EventBus] = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._blocks: "OrderedDict[BlockKey, List[Any]]" = OrderedDict()
        self._sizes: Dict[BlockKey, int] = {}
        self._used = 0
        self._lock = threading.Lock()
        self._bus = bus
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: BlockKey) -> Optional[List[Any]]:
        with self._lock:
            block = self._blocks.get(key)
            if block is None:
                self.misses += 1
            else:
                self._blocks.move_to_end(key)
                self.hits += 1
        bus = self._bus
        if bus:
            bus.post(CacheMiss(*key) if block is None else CacheHit(*key))
        return block

    def put(self, key: BlockKey, records: List[Any]) -> None:
        size = _estimate_size(records)
        evicted: List[tuple] = []
        with self._lock:
            if key in self._blocks:
                self._used -= self._sizes[key]
                del self._blocks[key]
            # A single partition bigger than the whole budget is stored
            # anyway (dropping it would livelock callers); it just evicts
            # everything else.
            while self._used + size > self.capacity_bytes and self._blocks:
                old_key, _ = self._blocks.popitem(last=False)
                old_size = self._sizes.pop(old_key)
                self._used -= old_size
                self.evictions += 1
                evicted.append((old_key, old_size))
            self._blocks[key] = records
            self._sizes[key] = size
            self._used += size
        bus = self._bus
        if bus:
            for (rdd_id, partition), old_size in evicted:
                bus.post(CacheEvict(rdd_id, partition, old_size))

    def drop_rdd(self, rdd_id: int) -> int:
        """Evict every cached partition of one RDD; returns count dropped."""
        evicted: List[Tuple[BlockKey, int]] = []
        with self._lock:
            keys = [k for k in self._blocks if k[0] == rdd_id]
            for k in keys:
                size = self._sizes.pop(k)
                self._used -= size
                del self._blocks[k]
                self.evictions += 1
                evicted.append((k, size))
        bus = self._bus
        if bus:
            for (rid, partition), size in evicted:
                bus.post(CacheEvict(rid, partition, size))
        return len(evicted)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._sizes.clear()
            self._used = 0

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)
