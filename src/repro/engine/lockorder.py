"""Single source of truth for the engine lock hierarchy + runtime sanitizer.

The declared lock order used to live inside the linter
(:mod:`repro.lint.concurrency_rules`); it now lives here so that *both*
consumers read the same table:

* the static analyzer (E201/E202 and the interprocedural E204/E205)
  imports :data:`LOCK_LEVELS` / :data:`MODULE_LOCK_LEVELS` from this
  module, and
* the runtime sanitizer — :class:`OrderedLock` — enforces the same
  order on live threads.

**The hierarchy.**  Outer locks have *low* levels and are acquired
first; a thread may only acquire a lock whose level is strictly greater
than every lock it already holds.  Same-level locks must never nest
(two leaf locks at level 90 are fine *sequentially*, never stacked).
Levels at or below :data:`DATA_PLANE_MAX_LEVEL` sit on every task's hot
path: blocking while holding one stalls the whole data plane.

**The sanitizer.**  ``OrderedLock("BlockStore._lock")`` wraps a real
``threading.Lock`` (or ``RLock`` with ``reentrant=True``) and keeps a
per-thread stack of held locks.  Three modes, selectable via
:func:`set_sanitizer_mode`, ``EngineConfig.lock_sanitizer`` or the
``REPRO_LOCK_SANITIZER`` environment variable:

``off``
    (default) pure delegation — one attribute read and a falsy check on
    the hot path, nothing else.
``record``
    out-of-order acquisitions append a :class:`ViolationRecord` to a
    bounded global log (:func:`violations`) and fire registered hooks
    (the Context posts a bus event and bumps a MetricsHub counter);
    execution continues.
``raise``
    the acquiring thread raises :class:`LockOrderError` *before*
    acquiring — the mode CI runs the engine+serve suites under.

The module is deliberately stdlib-only and imports nothing from
``repro``: the linter must be able to import the table without pulling
in numpy, and the engine's lowest layers must be able to import the
wrapper without cycles.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "LOCK_LEVELS",
    "MODULE_LOCK_LEVELS",
    "DATA_PLANE_MAX_LEVEL",
    "ADMISSION_GATE_LOCKS",
    "OrderedLock",
    "LockOrderError",
    "UndeclaredLockError",
    "ViolationRecord",
    "lock_level",
    "sanitizer_mode",
    "set_sanitizer_mode",
    "violations",
    "clear_violations",
    "add_violation_hook",
    "remove_violation_hook",
    "held_locks",
]

#: Declared lock order, outer (low level) -> inner (high level), keyed by
#: ``(class name, attribute)``.  Same-level locks must never nest.
LOCK_LEVELS: Dict[Tuple[str, str], int] = {
    ("ReproServer", "_engine_lock"): 10,
    ("Context", "_lock"): 20,
    ("SerialExecutor", "_lock"): 30,
    ("ThreadExecutor", "_lock"): 30,
    ("ProcessExecutor", "_lock"): 30,
    ("ShuffleManager", "_lock"): 40,
    ("BlockStore", "_lock"): 50,
    ("AccumulatorRegistry", "_lock"): 60,
    # The registry merges deltas *into* individual accumulators while
    # holding its own lock, so Accumulator sits one step inside it.
    ("Accumulator", "_lock"): 65,
    ("MetricsRegistry", "_lock"): 70,
    ("EventBus", "_lock"): 80,
    # The hub's instruments are incremented from bus listeners (i.e.
    # under EventBus._lock), so the hub sits between the bus and leaves.
    ("MetricsHub", "_lock"): 85,
    # Leaf locks: never held across engine calls.
    ("RecordingListener", "_lock"): 90,
    ("ResultCache", "_lock"): 90,
    ("SessionRegistry", "_lock"): 90,
    ("CampaignRegistry", "_lock"): 90,
    ("ServeMetricsListener", "_lock"): 90,
    ("LatencyHistogram", "_lock"): 90,
    ("FlightRecorder", "_lock"): 90,
    ("Tracer", "_lock"): 90,
    ("Sampler", "_lock"): 90,
}

#: Module-level lock names (id counters, the stage-id lock and the
#: default-hub singleton guard are leaves).
MODULE_LOCK_LEVELS: Dict[str, int] = {
    "_stage_lock": 90,
    "_ids_lock": 90,
    "_DEFAULT_HUB_LOCK": 90,
}

#: Held-lock levels at or below this sit on the data plane: blocking
#: while holding one is E202/E205 territory.
DATA_PLANE_MAX_LEVEL = 50

#: Admission gates: locks whose *purpose* is to serialize a whole
#: operation (one request through the engine, one task wave through the
#: pool), so blocking while holding them is the design, not a hazard.
#: The interprocedural E205 skips these; the per-function E202 still
#: fires at direct blocking sites so each one carries an explicit,
#: justified suppression.
ADMISSION_GATE_LOCKS = frozenset(
    {("ReproServer", "_engine_lock"), ("ProcessExecutor", "_lock")}
)

_VALID_MODES = ("off", "record", "raise")


class LockOrderError(RuntimeError):
    """Raised (in ``raise`` mode) on an out-of-order lock acquisition."""


class UndeclaredLockError(ValueError):
    """An :class:`OrderedLock` was named something the registry lacks."""


@dataclass(frozen=True)
class ViolationRecord:
    """One observed out-of-order acquisition."""

    acquired: str
    acquired_level: int
    held: str
    held_level: int
    thread: str

    def describe(self) -> str:
        return (
            f"thread {self.thread!r} acquired {self.acquired} "
            f"(level {self.acquired_level}) while holding {self.held} "
            f"(level {self.held_level}) — declared order is strictly descending"
        )


def lock_level(name: str) -> Optional[int]:
    """Level of ``"Class._attr"`` or a bare module-level lock name."""
    if "." in name:
        cls, _, attr = name.partition(".")
        return LOCK_LEVELS.get((cls, attr))
    return MODULE_LOCK_LEVELS.get(name)


# ----------------------------------------------------------------------
# sanitizer state
# ----------------------------------------------------------------------
def _env_mode() -> str:
    raw = os.environ.get("REPRO_LOCK_SANITIZER", "").strip().lower()
    return raw if raw in _VALID_MODES else "off"


_mode: str = _env_mode()
_active: bool = _mode != "off"
_tls = threading.local()
#: deque.append is atomic — no internal lock needed (which keeps the
#: sanitizer itself out of the hierarchy it polices).
_violations: Deque[ViolationRecord] = deque(maxlen=256)
_hooks: List[Callable[[ViolationRecord], None]] = []


def sanitizer_mode() -> str:
    """Current mode: ``"off"``, ``"record"`` or ``"raise"``."""
    return _mode


def set_sanitizer_mode(mode: str) -> str:
    """Switch the sanitizer; returns the previous mode."""
    global _mode, _active
    if mode not in _VALID_MODES:
        raise ValueError(f"lock sanitizer mode must be one of {_VALID_MODES}, got {mode!r}")
    previous = _mode
    _mode = mode
    _active = mode != "off"
    return previous


def violations() -> List[ViolationRecord]:
    """Snapshot of recorded violations (``record`` mode), oldest first."""
    return list(_violations)


def clear_violations() -> None:
    """Drop every recorded violation."""
    _violations.clear()


def add_violation_hook(hook: Callable[[ViolationRecord], None]) -> Callable:
    """Call *hook* on each recorded violation (``record`` mode only).

    Hooks run on the violating thread with order checks suspended, so a
    hook may safely acquire OrderedLocks (e.g. to post a bus event)
    without cascading secondary violations.  Returns *hook* for
    symmetric :func:`remove_violation_hook` use.
    """
    if hook not in _hooks:
        _hooks.append(hook)
    return hook


def remove_violation_hook(hook: Callable[[ViolationRecord], None]) -> None:
    """Unregister *hook* (no-op if absent)."""
    try:
        _hooks.remove(hook)
    except ValueError:
        pass


def held_locks() -> Tuple[Tuple[str, int], ...]:
    """(name, level) of locks the calling thread currently holds."""
    held = getattr(_tls, "held", None)
    return tuple((lock.name, lock.level) for lock in held) if held else ()


def _reset_after_fork() -> None:
    # A forked child inherits whatever held-stack the forking thread had
    # (e.g. Context._lock held while the pool pre-forks); none of those
    # locks are meaningfully "held" in the child.
    global _tls
    _tls = threading.local()
    _violations.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix everywhere we run
    os.register_at_fork(after_in_child=_reset_after_fork)


class OrderedLock:
    """A ``threading.Lock``/``RLock`` that knows its place in the hierarchy.

    The name must be declared in :data:`LOCK_LEVELS` (``"Class._attr"``)
    or :data:`MODULE_LOCK_LEVELS` (bare name) — constructing an
    undeclared one raises :class:`UndeclaredLockError`, which is what
    keeps the registry complete by construction.
    """

    __slots__ = ("name", "level", "reentrant", "_inner")

    def __init__(self, name: str, *, reentrant: bool = False) -> None:
        level = lock_level(name)
        if level is None:
            raise UndeclaredLockError(
                f"lock {name!r} has no declared level — register it in "
                "repro.engine.lockorder.LOCK_LEVELS (or MODULE_LOCK_LEVELS)"
            )
        self.name = name
        self.level = level
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    # -- order checking ------------------------------------------------
    def _check(self, held: List["OrderedLock"]) -> None:
        if getattr(_tls, "in_hook", False):
            return
        for other in held:
            if other is self:
                if self.reentrant:
                    continue  # re-acquire of an RLock is fine
            if other.level >= self.level:
                record = ViolationRecord(
                    acquired=self.name,
                    acquired_level=self.level,
                    held=other.name,
                    held_level=other.level,
                    thread=threading.current_thread().name,
                )
                if _mode == "raise":
                    raise LockOrderError(record.describe())
                _violations.append(record)
                _tls.in_hook = True
                try:
                    for hook in list(_hooks):
                        try:
                            hook(record)
                        except Exception:  # noqa: BLE001 - hooks must not kill callers
                            pass
                finally:
                    _tls.in_hook = False
                return  # one record per acquisition is enough

    # -- lock protocol -------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if not _active:
            return self._inner.acquire(blocking, timeout)
        held = getattr(_tls, "held", None)
        if held is None:
            held = _tls.held = []
        elif held:
            self._check(held)
        got = self._inner.acquire(blocking, timeout)
        if got:
            held.append(self)
        return got

    def release(self) -> None:
        if _active:
            held = getattr(_tls, "held", None)
            if held:
                # LIFO release is the overwhelmingly common case.
                if held[-1] is self:
                    held.pop()
                else:
                    for i in range(len(held) - 1, -1, -1):
                        if held[i] is self:
                            del held[i]
                            break
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        """Whether the underlying lock is currently held (non-reentrant only)."""
        inner_locked = getattr(self._inner, "locked", None)
        return bool(inner_locked()) if inner_locked is not None else False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "RLock" if self.reentrant else "Lock"
        return f"OrderedLock({self.name!r}, level={self.level}, {kind})"
