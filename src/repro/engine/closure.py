"""Closure serialization helpers.

Process-mode executors ship task closures to workers with ``pickle``.
Plain ``pickle`` refuses lambdas and locally-defined functions, which are
the dominant idiom in dataflow code, so we fall back to a tiny
code-object pickler (marshal for the code, explicit capture of defaults
and closure cells).  Globals referenced by the function are resolved by
module name on the worker — standard fork semantics make this safe here
because workers are forked from the driver process.
"""

from __future__ import annotations

import importlib
import io
import marshal
import pickle
import types
from typing import Any, Callable, List, Sequence, Tuple

from repro.engine.errors import ClosureSerializationError, SerializationError

__all__ = [
    "serialize",
    "deserialize",
    "serialize_oob",
    "deserialize_oob",
    "serialize_function",
    "deserialize_function",
]

#: Out-of-band buffers need pickle protocol 5 (Python >= 3.8, always true
#: here); pinned explicitly rather than via HIGHEST_PROTOCOL so the
#: buffer_callback contract is visible at the call sites.
OOB_PROTOCOL = 5


def _referenced_names(code: types.CodeType) -> set:
    """Global names referenced by *code*, including nested code objects."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _referenced_names(const)
    return names


def _picklable(value: Any) -> bool:
    try:
        buf = io.BytesIO()
        _ClosurePickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(value)
        return True
    except Exception:
        return False


def _reduce_function(fn: types.FunctionType) -> Tuple:
    code = marshal.dumps(fn.__code__)
    closure = None
    if fn.__closure__:
        closure = tuple(cell.cell_contents for cell in fn.__closure__)
    # Capture referenced globals *by value* so a worker forked before the
    # driver defined them (or a spawn-started worker) still resolves them.
    # Names whose values cannot be pickled fall back to module-dict lookup.
    captured = {}
    for name in _referenced_names(fn.__code__):
        if name in fn.__globals__:
            value = fn.__globals__[name]
            if isinstance(value, types.ModuleType) or _picklable(value):
                captured[name] = value
    return (
        code,
        fn.__name__,
        fn.__defaults__,
        closure,
        fn.__module__,
        fn.__qualname__,
        fn.__kwdefaults__,
        captured,
    )


def _rebuild_function(payload: Tuple) -> types.FunctionType:
    code_bytes, name, defaults, closure_vals, module, qualname, kwdefaults, captured = payload
    code = marshal.loads(code_bytes)
    try:
        mod = importlib.import_module(module)
        glb = dict(mod.__dict__)
    except Exception:
        glb = {}
    glb.setdefault("__builtins__", __builtins__)
    glb.update(captured)
    cells = None
    if closure_vals is not None:
        cells = tuple(types.CellType(v) for v in closure_vals)
    fn = types.FunctionType(code, glb, name, defaults, cells)
    fn.__qualname__ = qualname
    fn.__kwdefaults__ = kwdefaults
    return fn


class _ClosurePickler(pickle.Pickler):
    """Pickler that marshals otherwise-unpicklable plain functions."""

    def reducer_override(self, obj: Any):
        if isinstance(obj, types.ModuleType):
            return (importlib.import_module, (obj.__name__,))
        if isinstance(obj, types.FunctionType):
            # Importable top-level functions pickle fine by reference;
            # only intercept lambdas / nested functions.
            if "<locals>" in obj.__qualname__ or obj.__name__ == "<lambda>":
                return (_rebuild_function, (_reduce_function(obj),))
        return NotImplemented


def _raise_serialization_error(obj: Any, exc: Exception) -> None:
    """Localize the failure via the lint bridge before giving up.

    A bare pickle error names a type three frames deep; the bridge walks
    the payload the way the pickler did and names the exact closure cell
    or default that cannot ship, plus the lint rule that catches it
    statically.
    """
    from repro.lint.bridge import find_unpicklable

    issue = None
    try:
        issue = find_unpicklable(obj, _picklable)
    except Exception:  # diagnosis must never mask the original failure
        pass
    if issue is not None:
        raise ClosureSerializationError(
            f"cannot serialize {type(obj).__name__}: {exc} — "
            f"unpicklable capture at {issue.describe()}; "
            "run `python -m repro lint` to catch this before runtime",
            capture_path=issue.path,
            rule=issue.rule,
        ) from exc
    raise SerializationError(f"cannot serialize {type(obj).__name__}: {exc}") from exc


def serialize(obj: Any) -> bytes:
    """Pickle *obj*, tolerating lambdas and nested functions."""
    buf = io.BytesIO()
    try:
        _ClosurePickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    except Exception as exc:
        _raise_serialization_error(obj, exc)
    return buf.getvalue()


def deserialize(data: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    return pickle.loads(data)


def serialize_oob(obj: Any) -> Tuple[bytes, List[bytearray]]:
    """Pickle *obj* with protocol-5 out-of-band buffers.

    Returns ``(payload, buffers)``.  Contiguous NumPy arrays (lattice
    masks and log-probs above all) surface as :class:`pickle.PickleBuffer`
    views instead of being copied into the pickle stream; each view is
    snapshotted into a ``bytearray`` so the pair can cross a process
    boundary.  On the receiving side :func:`deserialize_oob` rebuilds the
    arrays as views over those buffers — no load-side copy — which is why
    the snapshots are ``bytearray`` (mutable) rather than ``bytes``: the
    reconstructed arrays stay writable, preserving in-band semantics.
    """
    buffers: List[pickle.PickleBuffer] = []
    buf = io.BytesIO()
    try:
        _ClosurePickler(buf, protocol=OOB_PROTOCOL, buffer_callback=buffers.append).dump(obj)
    except Exception as exc:
        _raise_serialization_error(obj, exc)
    return buf.getvalue(), [bytearray(pb) for pb in buffers]


def deserialize_oob(data: bytes, buffers: Sequence[Any]) -> Any:
    """Inverse of :func:`serialize_oob` (buffers resolve by position)."""
    return pickle.loads(data, buffers=buffers)


def serialize_function(fn: Callable) -> bytes:
    """Serialize a callable specifically (same machinery, clearer intent)."""
    return serialize(fn)


def deserialize_function(data: bytes) -> Callable:
    fn = deserialize(data)
    if not callable(fn):
        raise SerializationError("deserialized object is not callable")
    return fn
