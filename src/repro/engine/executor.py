"""Task execution backends.

A :class:`Task` is a self-contained unit: stage/partition coordinates plus
a ``body(env)`` closure produced by the scheduler.  The three executors
trade isolation for overhead:

* :class:`SerialExecutor` — in-line loop; zero overhead, the baseline.
* :class:`ThreadExecutor` — thread pool sharing the driver heap.  NumPy
  kernels release the GIL, so SBGT's block operations scale with cores
  while partitions stay zero-copy.  This is the default mode.
* :class:`ProcessExecutor` — forked worker pool; tasks and results are
  pickled, shuffle blocks ride inside the task payload.  Closest to
  Spark's separate executors (and to the serialization costs the repro
  notes warn about for PySpark).

Retries happen at the driver: a task raising is resubmitted up to
``max_task_retries`` times before :class:`TaskFailedError` aborts the job.
"""

from __future__ import annotations

import concurrent.futures as cf
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine import closure as closure_mod
from repro.engine.accumulator import close_task_staging, open_task_staging
from repro.engine.blockstore import BlockStore
from repro.engine.errors import TaskFailedError
from repro.engine.shuffle import (
    LocalShuffleFetcher,
    PayloadShuffleFetcher,
    ShuffleFetcher,
    ShuffleManager,
)

__all__ = [
    "Task",
    "TaskEnv",
    "TaskResult",
    "BaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
]


class TaskEnv:
    """What a running task can reach: shuffle input and (maybe) the cache."""

    __slots__ = ("fetcher", "blockstore")

    def __init__(self, fetcher: ShuffleFetcher, blockstore: Optional[BlockStore]) -> None:
        self.fetcher = fetcher
        self.blockstore = blockstore


@dataclass
class Task:
    """One partition's worth of work for one stage."""

    stage_id: int
    partition: int
    body: Callable[[TaskEnv], Any]
    # Process mode only: {(shuffle_id, reduce_id): bucket} copied in by the
    # scheduler so the worker needs no channel back to the driver.
    shuffle_payload: Optional[Dict[Tuple[int, int], list]] = None

    def run(self, env: TaskEnv) -> "TaskResult":
        open_task_staging()
        t0 = time.perf_counter()
        try:
            value = self.body(env)
        finally:
            deltas = close_task_staging()
        wall = time.perf_counter() - t0
        return TaskResult(self.partition, value, deltas, wall)


@dataclass
class TaskResult:
    partition: int
    value: Any
    acc_deltas: Dict[int, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    attempts: int = 1


class BaseExecutor:
    """Runs a batch of tasks, returning results ordered by task index."""

    def __init__(self, manager: ShuffleManager, blockstore: BlockStore, max_retries: int) -> None:
        self._manager = manager
        self._blockstore = blockstore
        self._max_retries = max_retries

    def _local_env(self) -> TaskEnv:
        return TaskEnv(LocalShuffleFetcher(self._manager), self._blockstore)

    def _run_with_retries(self, task: Task, env: TaskEnv) -> TaskResult:
        last: Optional[BaseException] = None
        for attempt in range(1, self._max_retries + 2):
            try:
                result = task.run(env)
                result.attempts = attempt
                return result
            except Exception as exc:  # noqa: BLE001 - task bodies are user code
                last = exc
        raise TaskFailedError(task.stage_id, task.partition, self._max_retries + 1, last)

    def submit(self, tasks: List[Task]) -> List[TaskResult]:  # pragma: no cover - abstract
        raise NotImplementedError

    def stop(self) -> None:
        """Release pool resources (idempotent)."""


class SerialExecutor(BaseExecutor):
    """Run tasks one after another on the driver thread."""

    def submit(self, tasks: List[Task]) -> List[TaskResult]:
        env = self._local_env()
        return [self._run_with_retries(t, env) for t in tasks]


class ThreadExecutor(BaseExecutor):
    """Thread-pool execution sharing the driver address space."""

    def __init__(
        self,
        manager: ShuffleManager,
        blockstore: BlockStore,
        max_retries: int,
        num_workers: int,
    ) -> None:
        super().__init__(manager, blockstore, max_retries)
        self._pool = cf.ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="engine-worker"
        )

    def submit(self, tasks: List[Task]) -> List[TaskResult]:
        env = self._local_env()
        futures = [self._pool.submit(self._run_with_retries, t, env) for t in tasks]
        return [f.result() for f in futures]

    def stop(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


def _process_worker_run(task_bytes: bytes) -> TaskResult:
    """Worker-side entry: rebuild the task, run against a payload env."""
    task: Task = closure_mod.deserialize(task_bytes)
    env = TaskEnv(PayloadShuffleFetcher(task.shuffle_payload or {}), None)
    return task.run(env)


class ProcessExecutor(BaseExecutor):
    """Forked worker pool; tasks ship as closure-pickled bytes."""

    def __init__(
        self,
        manager: ShuffleManager,
        blockstore: BlockStore,
        max_retries: int,
        num_workers: int,
    ) -> None:
        super().__init__(manager, blockstore, max_retries)
        ctx = multiprocessing.get_context("fork")
        self._pool = cf.ProcessPoolExecutor(max_workers=num_workers, mp_context=ctx)
        self._lock = threading.Lock()

    def submit(self, tasks: List[Task]) -> List[TaskResult]:
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        pending = {i: 0 for i in range(len(tasks))}  # task index -> attempts
        payloads = [closure_mod.serialize(t) for t in tasks]
        with self._lock:  # one job wave at a time through this pool
            futures = {
                self._pool.submit(_process_worker_run, payloads[i]): i for i in pending
            }
            while futures:
                done, _ = cf.wait(futures, return_when=cf.FIRST_COMPLETED)
                for fut in done:
                    i = futures.pop(fut)
                    try:
                        res = fut.result()
                        res.attempts = pending[i] + 1
                        results[i] = res
                    except Exception as exc:  # noqa: BLE001
                        pending[i] += 1
                        if pending[i] > self._max_retries:
                            for other in futures:
                                other.cancel()
                            raise TaskFailedError(
                                tasks[i].stage_id, tasks[i].partition, pending[i], exc
                            ) from exc
                        futures[self._pool.submit(_process_worker_run, payloads[i])] = i
        return [r for r in results if r is not None]

    def stop(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


def make_executor(
    mode: str,
    manager: ShuffleManager,
    blockstore: BlockStore,
    max_retries: int,
    num_workers: int,
) -> BaseExecutor:
    """Factory keyed on :attr:`EngineConfig.mode`."""
    if mode == "serial":
        return SerialExecutor(manager, blockstore, max_retries)
    if mode == "threads":
        return ThreadExecutor(manager, blockstore, max_retries, num_workers)
    if mode == "processes":
        return ProcessExecutor(manager, blockstore, max_retries, num_workers)
    raise ValueError(f"unknown executor mode {mode!r}")
