"""Task execution backends.

A :class:`Task` is a self-contained unit: stage/partition coordinates plus
a ``body(env)`` closure produced by the scheduler.  The three executors
trade isolation for overhead:

* :class:`SerialExecutor` — in-line loop; zero overhead, the baseline.
* :class:`ThreadExecutor` — thread pool sharing the driver heap.  NumPy
  kernels release the GIL, so SBGT's block operations scale with cores
  while partitions stay zero-copy.  This is the default mode.
* :class:`ProcessExecutor` — forked worker pool; tasks and results are
  pickled, shuffle blocks ride inside the task payload.  Closest to
  Spark's separate executors (and to the serialization costs the repro
  notes warn about for PySpark).

Process-mode data plane
-----------------------
Tasks and results cross the fork boundary as protocol-5 pickles with
out-of-band buffers (:func:`repro.engine.closure.serialize_oob`), so
NumPy payloads — lattice masks and log-probs above all — travel as raw
buffers instead of in-band bytes.  Each forked worker keeps a
process-resident :class:`BlockStore` serving ``cache()``-ed partitions
across jobs; entries are validated against the cache generation the
scheduler stamps into each task, and per-task cache events are relayed
back to the driver bus inside the :class:`TaskResult`.

Retries happen at the driver: a task raising is resubmitted up to
``max_task_retries`` times before :class:`TaskFailedError` aborts the job.
"""

from __future__ import annotations

import concurrent.futures as cf
import contextvars
import gc
import multiprocessing
import os
import threading
import time

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine import closure as closure_mod
from repro.engine.accumulator import close_task_staging, open_task_staging
from repro.engine.blockstore import BlockStore
from repro.engine.errors import EngineError, JobFailedError, TaskFailedError
from repro.engine.listener import (
    CacheEvict,
    CacheHit,
    CacheMiss,
    EventBus,
    TaskEnd,
    TaskRetry,
    TaskStart,
)
from repro.engine.lockorder import OrderedLock
from repro.engine.shuffle import (
    LocalShuffleFetcher,
    PayloadShuffleFetcher,
    ShuffleFetcher,
    ShuffleManager,
)

__all__ = [
    "Task",
    "TaskEnv",
    "TaskResult",
    "BaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
]


class TaskEnv:
    """What a running task can reach: shuffle input, cache, sources."""

    __slots__ = ("fetcher", "blockstore", "generations", "sources")

    def __init__(
        self,
        fetcher: ShuffleFetcher,
        blockstore: Optional[BlockStore],
        generations: Optional[Dict[int, int]] = None,
        sources: Optional[Dict[Tuple[int, int], list]] = None,
    ) -> None:
        self.fetcher = fetcher
        self.blockstore = blockstore
        self.generations = generations
        self.sources = sources

    def generation_of(self, rdd_id: int) -> int:
        """Cache epoch of *rdd_id* as known to this task."""
        if self.generations is None:
            return 0
        return self.generations.get(rdd_id, 0)

    def source_records(self, rdd_id: int, split: int) -> list:
        """Driver-held source partition shipped with the task."""
        if self.sources is not None:
            records = self.sources.get((rdd_id, split))
            if records is not None:
                return records
        raise EngineError(
            f"task payload is missing source partition rdd={rdd_id} split={split}"
        )


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (``ru_maxrss`` unit on Linux); 0 if unknown."""
    if resource is None:
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _gc_collections() -> int:
    """Total GC collection passes across all generations so far."""
    return sum(s["collections"] for s in gc.get_stats())


@dataclass
class Task:
    """One partition's worth of work for one stage."""

    stage_id: int
    partition: int
    body: Callable[[TaskEnv], Any]
    # Process mode only: {(shuffle_id, reduce_id): bucket} copied in by the
    # scheduler so the worker needs no channel back to the driver.
    shuffle_payload: Optional[Dict[Tuple[int, int], list]] = None
    # Process mode only: cache epochs of the cached RDDs in this task's
    # narrow lineage, so the worker store can detect stale entries.
    cache_generations: Optional[Dict[int, int]] = None
    # Process mode only: {(rdd_id, split): records} for source RDDs whose
    # data stays at the driver (their pickles ship without it).
    source_payload: Optional[Dict[Tuple[int, int], list]] = None
    # Process mode only: capacity for the lazily-created worker store.
    worker_cache_bytes: int = 0
    # Sampling-profiler rate stamped by the scheduler when a sampler is
    # installed (process mode relays worker samples via the TaskResult;
    # serial/thread tasks are visible to the driver sampler directly).
    profile_hz: float = 0.0

    def run(self, env: TaskEnv) -> "TaskResult":
        open_task_staging()
        # Epoch stamp taken *in the worker*: perf_counter origins differ
        # per process, so the wall clock is the only cross-process
        # ordering exporters can trust.
        t0_wall = time.time()
        worker = f"{os.getpid()}/{threading.current_thread().name}"
        # thread_time is the per-thread CPU clock: in thread mode it
        # attributes CPU to *this* task even while siblings run, which a
        # process-wide getrusage CPU reading cannot.
        t0_cpu = time.thread_time()
        rss0 = _peak_rss_kb()
        gc0 = _gc_collections()
        t0 = time.perf_counter()
        try:
            value = self.body(env)
        finally:
            deltas = close_task_staging()
        wall = time.perf_counter() - t0
        result = TaskResult(
            self.partition, value, deltas, wall, t0_wall=t0_wall, worker=worker
        )
        result.cpu_s = max(0.0, time.thread_time() - t0_cpu)
        result.rss_peak_kb = max(0, _peak_rss_kb() - rss0)
        result.gc_collections = max(0, _gc_collections() - gc0)
        return result


@dataclass
class TaskResult:
    partition: int
    value: Any
    acc_deltas: Dict[int, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    attempts: int = 1
    #: Wall-clock epoch at task start, stamped worker-side (0.0 = unknown).
    t0_wall: float = 0.0
    #: ``"<pid>/<thread-name>"`` of the executing worker.
    worker: str = ""
    #: Worker-store cache activity as compact ``(kind, rdd_id, partition,
    #: size)`` tuples; the driver replays them onto its bus (process mode
    #: has no live event channel from the workers).
    cache_events: List[tuple] = field(default_factory=list)
    #: Per-task CPU seconds on the executing thread's CPU clock.
    cpu_s: float = 0.0
    #: Growth of the executing process's peak RSS during the task, KiB.
    rss_peak_kb: int = 0
    #: GC collection passes that ran during the task.
    gc_collections: int = 0
    #: Collapsed-stack ``(stack, count)`` samples drained from a process
    #: worker's sampler; the driver folds them into the installed
    #: :class:`~repro.obs.sampler.Sampler` (same relay as cache_events).
    profile_samples: List[tuple] = field(default_factory=list)


class BaseExecutor:
    """Runs a batch of tasks, returning results ordered by task index."""

    def __init__(
        self,
        manager: ShuffleManager,
        blockstore: BlockStore,
        max_retries: int,
        bus: Optional[EventBus] = None,
        generations: Optional[Dict[int, int]] = None,
    ) -> None:
        self._manager = manager
        self._blockstore = blockstore
        self._max_retries = max_retries
        self._bus = bus
        # Live view of the driver's cache-generation registry (serial and
        # thread tasks read it directly; process tasks get a snapshot).
        self._generations = generations

    def _local_env(self) -> TaskEnv:
        return TaskEnv(
            LocalShuffleFetcher(self._manager), self._blockstore, self._generations
        )

    def _run_with_retries(self, task: Task, env: TaskEnv) -> TaskResult:
        bus = self._bus
        last: Optional[BaseException] = None
        for attempt in range(1, self._max_retries + 2):
            if bus:
                bus.post(TaskStart(task.stage_id, task.partition, attempt))
            try:
                result = task.run(env)
            except Exception as exc:  # noqa: BLE001 - task bodies are user code
                last = exc
                if bus:
                    bus.post(TaskRetry(task.stage_id, task.partition, attempt, repr(exc)))
                continue
            result.attempts = attempt
            if bus:
                bus.post(
                    TaskEnd(
                        task.stage_id,
                        task.partition,
                        result.wall_s,
                        attempt,
                        t0_wall=result.t0_wall,
                        worker=result.worker,
                        cpu_s=result.cpu_s,
                        rss_peak_kb=result.rss_peak_kb,
                        gc_collections=result.gc_collections,
                    )
                )
            return result
        raise TaskFailedError(task.stage_id, task.partition, self._max_retries + 1, last)

    def submit(self, tasks: List[Task]) -> List[TaskResult]:  # pragma: no cover - abstract
        raise NotImplementedError

    def stop(self) -> None:
        """Release pool resources (idempotent)."""


class SerialExecutor(BaseExecutor):
    """Run tasks one after another on the driver thread."""

    def submit(self, tasks: List[Task]) -> List[TaskResult]:
        env = self._local_env()
        return [self._run_with_retries(t, env) for t in tasks]


class ThreadExecutor(BaseExecutor):
    """Thread-pool execution sharing the driver address space."""

    def __init__(
        self,
        manager: ShuffleManager,
        blockstore: BlockStore,
        max_retries: int,
        num_workers: int,
        bus: Optional[EventBus] = None,
        generations: Optional[Dict[int, int]] = None,
    ) -> None:
        super().__init__(manager, blockstore, max_retries, bus, generations)
        self._pool = cf.ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="engine-worker"
        )

    def submit(self, tasks: List[Task]) -> List[TaskResult]:
        env = self._local_env()
        # Each task runs under a copy of the submitting thread's
        # contextvars, so trace/phase stamps survive the hop onto pool
        # threads (one cheap copy_context per task).
        futures = [
            self._pool.submit(
                contextvars.copy_context().run, self._run_with_retries, t, env
            )
            for t in tasks
        ]
        # Fail fast: the first task to exhaust its retries aborts the
        # wave — queued tasks are cancelled instead of draining behind
        # an in-order result scan.
        done, not_done = cf.wait(futures, return_when=cf.FIRST_EXCEPTION)
        failure = next((f for f in done if f.exception() is not None), None)
        if failure is not None:
            for f in not_done:
                f.cancel()
            raise failure.exception()
        return [f.result() for f in futures]

    def stop(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


#: Per-worker resident block store (fork mode keeps workers alive across
#: jobs, so cached partitions survive between actions).  Workers run one
#: task at a time, so unlocked module state is safe.
_WORKER_STORE: Optional[BlockStore] = None


def _worker_store(capacity_bytes: int) -> BlockStore:
    global _WORKER_STORE
    if _WORKER_STORE is None:
        _WORKER_STORE = BlockStore(capacity_bytes or (256 << 20))
    return _WORKER_STORE


class _CacheEventTap:
    """Bus stand-in installed on the worker store for one task.

    Collapses cache events into compact tuples the :class:`TaskResult`
    carries back; the driver replays them as real events (workers have
    no channel to the driver bus).  Truthy so the store's ``if bus:``
    guards fire.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[tuple] = []

    def __bool__(self) -> bool:
        return True

    def post(self, event: Any) -> None:
        if isinstance(event, CacheHit):
            self.events.append(("hit", event.rdd_id, event.partition, 0))
        elif isinstance(event, CacheMiss):
            self.events.append(("miss", event.rdd_id, event.partition, 0))
        elif isinstance(event, CacheEvict):
            self.events.append(("evict", event.rdd_id, event.partition, event.size_bytes))


def _replay_cache_events(bus: EventBus, events: List[tuple]) -> None:
    """Re-post worker cache activity on the driver bus, trace-stamped."""
    for kind, rdd_id, partition, size in events:
        if kind == "hit":
            bus.post(CacheHit(rdd_id, partition))
        elif kind == "miss":
            bus.post(CacheMiss(rdd_id, partition))
        else:
            bus.post(CacheEvict(rdd_id, partition, size))


#: Whether this worker currently runs a sampler (so a profile_hz of 0
#: still stops and drains it exactly once, without importing repro.obs
#: on the never-profiled fast path).
_WORKER_PROFILING = False


def _process_worker_run(task_bytes: bytes, task_buffers: List[bytearray]) -> Tuple[bytes, List[bytearray]]:
    """Worker-side entry: rebuild the task, run against a payload env."""
    global _WORKER_PROFILING
    task: Task = closure_mod.deserialize_oob(task_bytes, task_buffers)
    store = _worker_store(task.worker_cache_bytes)
    tap = _CacheEventTap()
    store._bus = tap
    env = TaskEnv(
        PayloadShuffleFetcher(task.shuffle_payload or {}),
        store,
        task.cache_generations,
        task.source_payload,
    )
    try:
        result = task.run(env)
    finally:
        store._bus = None
    result.cache_events = tap.events
    if task.profile_hz > 0 or _WORKER_PROFILING:
        from repro.obs.sampler import worker_sync  # lazy: obs sits above engine

        result.profile_samples = worker_sync(task.profile_hz)
        _WORKER_PROFILING = task.profile_hz > 0
    return closure_mod.serialize_oob(result)


def _process_worker_warmup() -> int:
    return os.getpid()


class ProcessExecutor(BaseExecutor):
    """Forked worker pool; tasks ship as closure-pickled bytes."""

    def __init__(
        self,
        manager: ShuffleManager,
        blockstore: BlockStore,
        max_retries: int,
        num_workers: int,
        bus: Optional[EventBus] = None,
        generations: Optional[Dict[int, int]] = None,
    ) -> None:
        super().__init__(manager, blockstore, max_retries, bus, generations)
        ctx = multiprocessing.get_context("fork")
        self._pool = cf.ProcessPoolExecutor(max_workers=num_workers, mp_context=ctx)
        self._lock = OrderedLock("ProcessExecutor._lock")
        # Fork the whole worker pool NOW rather than at the first job.
        # With the fork start method CPython launches every worker on
        # the first submit and never forks again, so forcing that
        # submit here pins all forking to Context creation.  Otherwise
        # the fork happens mid-job — under the asyncio server that
        # means workers inherit duplicates of whatever fds are live at
        # the time (client sockets above all), and a connection the
        # driver closes never reaches EOF while the long-lived workers
        # hold their copies.
        self._pool.submit(_process_worker_warmup).result()

    @staticmethod
    def _require_complete(
        results: List[Optional[TaskResult]], tasks: List[Task]
    ) -> List[TaskResult]:
        """Every submitted task must have produced a result.

        A worker future that vanishes without raising (pool torn down,
        future lost) must abort the job loudly — silently dropping a
        partition would corrupt every downstream aggregate.
        """
        missing = [tasks[i].partition for i, r in enumerate(results) if r is None]
        if missing:
            raise JobFailedError(
                f"worker pool lost result(s) for partition(s) {missing} "
                f"of stage {tasks[0].stage_id}"
            )
        return results  # type: ignore[return-value]

    def submit(self, tasks: List[Task]) -> List[TaskResult]:
        bus = self._bus
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        pending = {i: 0 for i in range(len(tasks))}  # task index -> attempts
        payloads = [closure_mod.serialize_oob(t) for t in tasks]
        # One job wave at a time through this pool: the lock is a pool
        # admission gate held for the wave's whole lifetime by design, so
        # waiting on futures and posting progress events under it is the
        # point, not an accident.  No listener acquires this lock.
        with self._lock:  # repro: lint-ignore[E202]
            futures = {
                self._pool.submit(_process_worker_run, *payloads[i]): i for i in pending
            }
            if bus:
                for i in pending:
                    bus.post(TaskStart(tasks[i].stage_id, tasks[i].partition, 1))
            while futures:
                done, _ = cf.wait(futures, return_when=cf.FIRST_COMPLETED)
                for fut in done:
                    i = futures.pop(fut)
                    try:
                        res: TaskResult = closure_mod.deserialize_oob(*fut.result())
                        res.attempts = pending[i] + 1
                        results[i] = res
                        if res.profile_samples:
                            from repro.obs.sampler import merge_into_installed

                            merge_into_installed(res.profile_samples)
                        if bus:
                            bus.post(
                                TaskEnd(
                                    tasks[i].stage_id,
                                    tasks[i].partition,
                                    res.wall_s,
                                    res.attempts,
                                    t0_wall=res.t0_wall,
                                    worker=res.worker,
                                    cpu_s=res.cpu_s,
                                    rss_peak_kb=res.rss_peak_kb,
                                    gc_collections=res.gc_collections,
                                )
                            )
                            _replay_cache_events(bus, res.cache_events)
                    except Exception as exc:  # noqa: BLE001
                        pending[i] += 1
                        if bus:
                            bus.post(
                                TaskRetry(
                                    tasks[i].stage_id,
                                    tasks[i].partition,
                                    pending[i],
                                    repr(exc),
                                )
                            )
                        if pending[i] > self._max_retries:
                            for other in futures:
                                other.cancel()
                            raise TaskFailedError(
                                tasks[i].stage_id, tasks[i].partition, pending[i], exc
                            ) from exc
                        futures[self._pool.submit(_process_worker_run, *payloads[i])] = i
                        if bus:
                            bus.post(
                                TaskStart(
                                    tasks[i].stage_id, tasks[i].partition, pending[i] + 1
                                )
                            )
        return self._require_complete(results, tasks)

    def stop(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


def make_executor(
    mode: str,
    manager: ShuffleManager,
    blockstore: BlockStore,
    max_retries: int,
    num_workers: int,
    bus: Optional[EventBus] = None,
    generations: Optional[Dict[int, int]] = None,
) -> BaseExecutor:
    """Factory keyed on :attr:`EngineConfig.mode`."""
    if mode == "serial":
        return SerialExecutor(manager, blockstore, max_retries, bus, generations)
    if mode == "threads":
        return ThreadExecutor(manager, blockstore, max_retries, num_workers, bus, generations)
    if mode == "processes":
        return ProcessExecutor(manager, blockstore, max_retries, num_workers, bus, generations)
    raise ValueError(f"unknown executor mode {mode!r}")
