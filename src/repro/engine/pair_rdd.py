"""Key-value (shuffle) operations: the wide side of the RDD algebra.

Records of a "pair RDD" are ``(key, value)`` tuples.  Every function here
either builds a :class:`ShuffledRDD` (one shuffle dependency) or a
:class:`CoGroupedRDD` (one per input, skipping inputs already partitioned
the right way — Spark's narrow-cogroup optimization).
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.engine.dag import Aggregator, NarrowDependency, ShuffleDependency
from repro.engine.rdd import RDD, TaskContext
from repro.engine.shuffle import HashPartitioner, Partitioner, RangePartitioner

__all__ = [
    "ShuffledRDD",
    "CoGroupedRDD",
    "reduce_by_key",
    "combine_by_key",
    "aggregate_by_key",
    "group_by_key",
    "partition_by",
    "partition_by_index",
    "distinct",
    "sort_by",
    "join",
    "cogroup",
    "subtract",
    "intersection",
]


class ShuffledRDD(RDD):
    """Output side of a single shuffle.

    Partition ``p`` merges the ``p``-th bucket of every map task.  With an
    aggregator the merge combines values per key (map-side combiners when
    the aggregator allows it); without one it just replays the pairs.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator] = None,
    ) -> None:
        dep = ShuffleDependency(parent, partitioner, aggregator)
        super().__init__(parent.ctx, [dep], partitioner.num_partitions)
        self.partitioner = partitioner
        self._dep = dep

    def compute(self, split: int, tc: TaskContext) -> Iterable[Tuple[Any, Any]]:
        records = tc.env.fetcher.fetch(self._dep.shuffle_id, split)
        agg = self._dep.aggregator
        if agg is None:
            return records
        merged: dict = {}
        if agg.map_side_combine:
            for k, c in records:
                if k in merged:
                    merged[k] = agg.merge_combiners(merged[k], c)
                else:
                    merged[k] = c
        else:
            for k, v in records:
                if k in merged:
                    merged[k] = agg.merge_value(merged[k], v)
                else:
                    merged[k] = agg.create(v)
        return merged.items()


class CoGroupedRDD(RDD):
    """Groups values of several pair RDDs by key into parallel lists.

    Record shape: ``(key, (values_from_rdd0, values_from_rdd1, ...))``.
    Inputs whose partitioner already equals the target are read narrowly.
    """

    def __init__(self, rdds: Sequence[RDD], partitioner: Partitioner) -> None:
        if not rdds:
            raise ValueError("cogroup of no RDDs")
        deps = []
        for r in rdds:
            if r.partitioner is not None and r.partitioner == partitioner:
                deps.append(NarrowDependency(r))
            else:
                deps.append(ShuffleDependency(r, partitioner))
        super().__init__(rdds[0].ctx, deps, partitioner.num_partitions)
        self.partitioner = partitioner
        self._rdds = list(rdds)

    def narrow_parent_splits(self, split: int) -> List[Tuple[RDD, int]]:
        return [
            (dep.rdd, split)
            for dep in self.dependencies
            if isinstance(dep, NarrowDependency)
        ]

    def compute(self, split: int, tc: TaskContext) -> Iterable[Tuple[Any, tuple]]:
        n = len(self._rdds)
        table: dict = {}
        for idx, dep in enumerate(self.dependencies):
            if isinstance(dep, ShuffleDependency):
                pairs: Iterable = tc.env.fetcher.fetch(dep.shuffle_id, split)
            else:
                pairs = dep.rdd.iterator(split, tc)
            for k, v in pairs:
                groups = table.get(k)
                if groups is None:
                    groups = tuple([] for _ in range(n))
                    table[k] = groups
                groups[idx].append(v)
        return table.items()


# ----------------------------------------------------------------------
# public pair operations
# ----------------------------------------------------------------------
def _default_partitioner(rdd: RDD, num_partitions: Optional[int]) -> Partitioner:
    if num_partitions is not None:
        return HashPartitioner(num_partitions)
    if rdd.partitioner is not None:
        return rdd.partitioner
    return HashPartitioner(rdd.ctx.config.effective_shuffle_partitions)


def combine_by_key(
    rdd: RDD,
    create: Callable,
    merge_value: Callable,
    merge_combiners: Callable,
    num_partitions: Optional[int] = None,
    map_side_combine: bool = True,
) -> RDD:
    """The general per-key aggregation every other keyed fold reduces to."""
    part = _default_partitioner(rdd, num_partitions)
    agg = Aggregator(create, merge_value, merge_combiners, map_side_combine)
    return ShuffledRDD(rdd, part, agg)


def reduce_by_key(rdd: RDD, op: Callable, num_partitions: Optional[int] = None) -> RDD:
    return combine_by_key(rdd, lambda v: v, op, op, num_partitions)


def aggregate_by_key(
    rdd: RDD, zero: Any, seq_op: Callable, comb_op: Callable, num_partitions: Optional[int] = None
) -> RDD:
    # Deep-copy the zero per key so mutable zeros (lists, arrays) are safe.
    return combine_by_key(
        rdd,
        lambda v: seq_op(copy.deepcopy(zero), v),
        seq_op,
        comb_op,
        num_partitions,
    )


def group_by_key(rdd: RDD, num_partitions: Optional[int] = None) -> RDD:
    return combine_by_key(
        rdd,
        lambda v: [v],
        lambda acc, v: (acc.append(v), acc)[1],
        lambda a, b: a + b,
        num_partitions,
        # Grouping gains nothing from map-side combine (no data reduction).
        map_side_combine=False,
    )


def partition_by(rdd: RDD, partitioner: Partitioner) -> RDD:
    """Repartition pairs by *partitioner*; no-op if already compatible."""
    if rdd.partitioner is not None and rdd.partitioner == partitioner:
        return rdd
    return ShuffledRDD(rdd, partitioner, aggregator=None)


def partition_by_index(rdd: RDD, num_partitions: int) -> RDD:
    """Round-robin rebalance of arbitrary records (``repartition``)."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")

    def add_keys(i: int, it: Iterable) -> Iterable[Tuple[int, Any]]:
        return (((i + j) % num_partitions, x) for j, x in enumerate(it))

    keyed = rdd.map_partitions_with_index(add_keys)
    shuffled = ShuffledRDD(keyed, _IdentityPartitioner(num_partitions))
    return shuffled.map(lambda kv: kv[1])


class _IdentityPartitioner(Partitioner):
    """Keys *are* partition ids (used by repartition's synthetic keys)."""

    def partition(self, key: int) -> int:
        return int(key) % self.num_partitions


def distinct(rdd: RDD, num_partitions: Optional[int] = None) -> RDD:
    return reduce_by_key(rdd.map(lambda x: (x, None)), lambda a, _b: a, num_partitions).keys()


def sort_by(
    rdd: RDD,
    key_func: Callable,
    ascending: bool = True,
    num_partitions: Optional[int] = None,
) -> RDD:
    """Total sort: sample keys, range-partition, sort per partition."""
    n_out = num_partitions or rdd.num_partitions
    keys = rdd.map(key_func).sample(0.2, seed=17).collect()
    if len(keys) < 4 * n_out:
        keys = rdd.map(key_func).collect()
    if not keys:
        return rdd
    keys.sort()
    bounds = [keys[round((i + 1) * (len(keys) - 1) / n_out)] for i in range(n_out - 1)]
    # Dedupe bounds to avoid empty-range degenerate partitioners.
    bounds = sorted(set(bounds))
    part = RangePartitioner(bounds, ascending=ascending)
    keyed = rdd.map(lambda x: (key_func(x), x))
    shuffled = ShuffledRDD(keyed, part)

    def sort_part(_i: int, it: Iterable) -> Iterable:
        rows = sorted(it, key=lambda kv: kv[0], reverse=not ascending)
        return (v for _k, v in rows)

    return shuffled.map_partitions_with_index(sort_part)


def cogroup(rdds: Sequence[RDD], num_partitions: Optional[int] = None) -> RDD:
    for r in rdds:
        if num_partitions is None and r.partitioner is not None:
            return CoGroupedRDD(rdds, r.partitioner)
    part = HashPartitioner(num_partitions or rdds[0].ctx.config.effective_shuffle_partitions)
    return CoGroupedRDD(rdds, part)


def subtract(left: RDD, right: RDD, num_partitions: Optional[int] = None) -> RDD:
    """Records of *left* whose value never appears in *right*.

    Collapses duplicates of surviving records to their left-side
    multiplicity (each surviving left record appears as often as it did
    in *left*).
    """
    l_keyed = left.map(lambda x: (x, True))
    r_keyed = right.map(lambda x: (x, True))
    grouped = cogroup([l_keyed, r_keyed], num_partitions)
    return grouped.flat_map(
        lambda kv: [kv[0]] * len(kv[1][0]) if not kv[1][1] else []
    )


def intersection(left: RDD, right: RDD, num_partitions: Optional[int] = None) -> RDD:
    """Distinct records present in both RDDs."""
    l_keyed = left.map(lambda x: (x, True))
    r_keyed = right.map(lambda x: (x, True))
    grouped = cogroup([l_keyed, r_keyed], num_partitions)
    return grouped.flat_map(lambda kv: [kv[0]] if kv[1][0] and kv[1][1] else [])


def join(
    left: RDD, right: RDD, num_partitions: Optional[int] = None, how: str = "inner"
) -> RDD:
    """Relational join of two pair RDDs via cogroup."""
    if how not in ("inner", "left", "right", "full"):
        raise ValueError(f"unknown join type {how!r}")
    grouped = cogroup([left, right], num_partitions)

    def emit(groups: tuple) -> Iterable[tuple]:
        ls, rs = groups
        if ls and rs:
            return itertools.product(ls, rs)
        if ls and not rs and how in ("left", "full"):
            return ((l, None) for l in ls)
        if rs and not ls and how in ("right", "full"):
            return ((None, r) for r in rs)
        return ()

    return grouped.flat_map_values(emit)
