"""HyperLogLog: approximate distinct counting for RDDs.

``RDD.distinct().count()`` shuffles every record; a HyperLogLog sketch
answers "roughly how many distinct?" with one narrow pass and a few KB
of state — the standard trick for cardinality on large keyed data (and
Spark's ``countApproxDistinct``).  Implementation is the classic
Flajolet–Furet–Gandouet–Meunier estimator with the small-range
(linear-counting) and bias corrections.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable

import numpy as np

__all__ = ["HyperLogLog"]


def _hash64(value: Any) -> int:
    """Stable 64-bit hash (independent of PYTHONHASHSEED)."""
    data = repr(value).encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class HyperLogLog:
    """Mergeable cardinality sketch.

    Parameters
    ----------
    precision:
        ``p`` in [4, 16]: ``2^p`` registers; relative standard error is
        about ``1.04 / sqrt(2^p)`` (~1.6 % at the default p=12).
    """

    __slots__ = ("precision", "m", "registers")

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self.m = 1 << precision
        self.registers = np.zeros(self.m, dtype=np.uint8)

    # ------------------------------------------------------------------
    def add(self, value: Any) -> "HyperLogLog":
        h = _hash64(value)
        idx = h >> (64 - self.precision)
        rest = h & ((1 << (64 - self.precision)) - 1)
        # Rank: position of the leftmost 1-bit in the remaining bits.
        rank = (64 - self.precision) - rest.bit_length() + 1
        if rank > self.registers[idx]:
            self.registers[idx] = rank
        return self

    def add_all(self, values: Iterable[Any]) -> "HyperLogLog":
        for v in values:
            self.add(v)
        return self

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        if other.precision != self.precision:
            raise ValueError("cannot merge sketches of different precision")
        np.maximum(self.registers, other.registers, out=self.registers)
        return self

    # ------------------------------------------------------------------
    @property
    def _alpha(self) -> float:
        if self.m >= 128:
            return 0.7213 / (1 + 1.079 / self.m)
        return {16: 0.673, 32: 0.697, 64: 0.709}[self.m]

    def cardinality(self) -> float:
        """Estimated number of distinct values added."""
        regs = self.registers.astype(np.float64)
        estimate = self._alpha * self.m * self.m / np.sum(np.exp2(-regs))
        if estimate <= 2.5 * self.m:  # small-range: linear counting
            zeros = int(np.count_nonzero(self.registers == 0))
            if zeros:
                return float(self.m * math.log(self.m / zeros))
        return float(estimate)

    def relative_error(self) -> float:
        """Expected relative standard error of this sketch."""
        return 1.04 / math.sqrt(self.m)


def count_approx_distinct(rdd, precision: int = 12) -> int:
    """Approximate distinct count of an RDD in one narrow pass."""
    merged = rdd.aggregate(
        HyperLogLog(precision),
        lambda acc, x: acc.add(x),
        lambda a, b: a.merge(b),
    )
    return int(round(merged.cardinality()))