"""Per-site prevalence beliefs and the learned Beta hyperprior.

Each site's screening history reduces to two sufficient statistics —
individuals screened and cases found — which, under a Beta hyperprior,
give a conjugate ``Beta(alpha0 + cases, beta0 + negatives)`` posterior
over that site's prevalence.  These posteriors are exactly what the
Thompson allocator samples from.

The hyperprior itself is *learned* across the fleet (Sakata-style
empirical Bayes): after each round, a method-of-moments fit to the
observed site rates yields the ``Beta(alpha0, beta0)`` that shrinks
thinly-observed sites toward the fleet-wide prevalence profile.  A
homogeneous fleet learns a concentrated hyperprior (strong shrinkage);
a heterogeneous one learns a diffuse hyperprior, so single-site
evidence dominates quickly — the behaviour a bandit needs to separate
hot sites from cold ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["BetaHyperprior", "SiteBelief", "learn_hyperprior"]


@dataclass(frozen=True)
class BetaHyperprior:
    """``Beta(alpha, beta)`` shared prior over site prevalences.

    The default matches the repo's community scenario: mean ≈ 3% with a
    light pseudo-count, so a handful of screens can move any site.
    """

    alpha: float = 1.0
    beta: float = 30.0

    def __post_init__(self) -> None:
        if not (self.alpha > 0 and self.beta > 0):
            raise ValueError("hyperprior pseudo-counts must be positive")

    @property
    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    @property
    def pseudo_count(self) -> float:
        return self.alpha + self.beta


@dataclass
class SiteBelief:
    """Sufficient statistics of one site's screening history."""

    cases: int = 0
    screened: int = 0

    def observe(self, cases: int, screened: int) -> None:
        """Fold one screen's outcome (``cases`` positives among ``screened``)."""
        if screened < 0 or not 0 <= cases or cases > max(screened, 0):
            raise ValueError(f"invalid screen outcome ({cases}/{screened})")
        self.cases += int(cases)
        self.screened += int(screened)

    def posterior(self, hyper: BetaHyperprior) -> Tuple[float, float]:
        """``(alpha, beta)`` of the conjugate prevalence posterior."""
        return (
            hyper.alpha + self.cases,
            hyper.beta + (self.screened - self.cases),
        )

    def mean(self, hyper: BetaHyperprior) -> float:
        """Posterior-mean prevalence under *hyper*."""
        a, b = self.posterior(hyper)
        return a / (a + b)


def learn_hyperprior(
    beliefs: Sequence[SiteBelief],
    default: BetaHyperprior = BetaHyperprior(),
    min_pseudo: float = 2.0,
    max_pseudo: float = 200.0,
) -> BetaHyperprior:
    """Method-of-moments Beta fit to the observed site rates.

    Sites with no screening history yet contribute nothing; with fewer
    than two observed sites (or degenerate variance) the *default*
    carries over unchanged.  The fitted total pseudo-count is clamped to
    ``[min_pseudo, max_pseudo]`` so one lucky round can neither wash out
    the prior nor freeze it.
    """
    observed = [b for b in beliefs if b.screened > 0]
    if len(observed) < 2:
        return default
    # Lightly smoothed per-site rates (Jeffreys-ish) keep all-negative
    # sites off the 0.0 boundary where moments degenerate.
    rates = np.array([(b.cases + 0.5) / (b.screened + 1.0) for b in observed])
    mean = float(np.clip(rates.mean(), 1e-4, 1 - 1e-4))
    var = float(rates.var())
    if var <= 1e-12:
        return default
    # Beta moments: var = m(1-m)/(nu+1)  =>  nu = m(1-m)/var - 1.
    nu = mean * (1.0 - mean) / var - 1.0
    nu = float(np.clip(nu, min_pseudo, max_pseudo))
    return BetaHyperprior(alpha=mean * nu, beta=(1.0 - mean) * nu)
