"""Multi-site surveillance orchestration (``repro.surveil``).

The paper frames SBGT as disease-surveillance infrastructure; this
package supplies the fleet layer above single screens: a
:class:`Campaign` drives K sites round by round, a
:class:`BudgetAllocator` (Thompson sampling against learned per-site
prevalence beliefs, with uniform and ε-greedy baselines) splits each
round's test budget, and every allocated screen runs on the existing
engine as parallel work.  See ``docs/architecture.md`` ("Surveillance
orchestration") for the round loop and event flow.
"""

from repro.surveil.allocator import (
    ALLOCATOR_HELP,
    BudgetAllocator,
    GreedyAllocator,
    ThompsonAllocator,
    UniformAllocator,
    make_allocator,
)
from repro.surveil.beliefs import BetaHyperprior, SiteBelief, learn_hyperprior
from repro.surveil.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    RoundSummary,
    SiteScreenJob,
    SiteScreenOutcome,
    run_site_screen,
    site_screen_seed,
)
from repro.surveil.events import BudgetAllocated, RoundEnd, RoundStart, SiteScreened
from repro.surveil.sites import (
    FLEET_KINDS,
    SITE_KINDS,
    SiteSpec,
    epidemic_fleet,
    heterogeneous_fleet,
    household_fleet,
    make_fleet,
)

__all__ = [
    "ALLOCATOR_HELP",
    "BudgetAllocator",
    "ThompsonAllocator",
    "UniformAllocator",
    "GreedyAllocator",
    "make_allocator",
    "BetaHyperprior",
    "SiteBelief",
    "learn_hyperprior",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "RoundSummary",
    "SiteScreenJob",
    "SiteScreenOutcome",
    "run_site_screen",
    "site_screen_seed",
    "RoundStart",
    "BudgetAllocated",
    "SiteScreened",
    "RoundEnd",
    "SiteSpec",
    "SITE_KINDS",
    "FLEET_KINDS",
    "heterogeneous_fleet",
    "epidemic_fleet",
    "household_fleet",
    "make_fleet",
]
