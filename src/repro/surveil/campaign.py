"""The multi-site campaign orchestrator (the round loop).

Each round the :class:`Campaign`:

1. posts :class:`~repro.surveil.events.RoundStart`;
2. asks its :class:`~repro.surveil.allocator.BudgetAllocator` to split
   the round's screen budget across sites, sampling from the sites'
   current Beta prevalence posteriors, and posts
   :class:`~repro.surveil.events.BudgetAllocated`;
3. expands the allocation into picklable :class:`SiteScreenJob` work
   units and runs them as **one engine job graph** — sites are the
   parallel dimension (`ctx.parallelize(jobs).map(run_site_screen)`),
   with a serial fallback when no context is given;
4. folds every :class:`SiteScreenOutcome` back into the owning site's
   :class:`~repro.surveil.beliefs.SiteBelief` (posting
   :class:`~repro.surveil.events.SiteScreened` per screen), then
   re-learns the fleet hyperprior (Sakata-style empirical Bayes).

Everything runs under a trace scope and the ``surveil`` phase, so a
campaign renders as one correlated timeline in the Chrome exporter,
allocation decisions interleaved with the screens they caused.

:func:`run_site_screen` is a **module-level task function** operating
only on its frozen job dataclass — nothing driver-resident (campaign,
allocator, context) ships to workers, and every screen re-seeds its own
generator from ``(campaign seed, round, site, draw)``, so results are
reproducible and independent of scheduling order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.tracing import ensure_trace
from repro.obs.tracer import trace_phase
from repro.surveil.allocator import make_allocator
from repro.surveil.beliefs import BetaHyperprior, SiteBelief, learn_hyperprior
from repro.surveil.events import (
    PHASE_SURVEIL,
    BudgetAllocated,
    RoundEnd,
    RoundStart,
    SiteScreened,
)
from repro.surveil.sites import SiteSpec
from repro.util.validation import check_positive_int
from repro.workflows.classify import run_screen_from_space, screen_with_backend
from repro.workflows.options import ScreenOptions

__all__ = [
    "CampaignConfig",
    "Campaign",
    "CampaignResult",
    "RoundSummary",
    "SiteScreenJob",
    "SiteScreenOutcome",
    "run_site_screen",
    "site_screen_seed",
]

_BACKENDS = ("dense", "sparse", "particle")


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-level knobs (everything but the fleet itself)."""

    rounds: int = 12
    budget: int = 8
    allocator: str = "thompson"
    policy: str = "bha"
    backend: str = "dense"
    max_stages: int = 40
    seed: int = 0
    learn_hyperprior: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.rounds, "rounds")
        check_positive_int(self.budget, "budget")
        check_positive_int(self.max_stages, "max_stages")
        if self.backend not in _BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r} (choose from {_BACKENDS})")
        make_allocator(self.allocator)  # validate the spelling early


def site_screen_seed(base_seed: int, round_index: int, site_index: int, draw: int) -> int:
    """The deterministic per-screen seed.

    Derived through :class:`numpy.random.SeedSequence`, so screens are
    statistically independent across rounds, sites, and repeat draws
    while the whole campaign replays from one base seed.
    """
    ss = np.random.SeedSequence([base_seed, round_index, site_index, draw])
    return int(ss.generate_state(1)[0])


# ----------------------------------------------------------------------
# the work unit (ships to engine tasks — plain picklable data only)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SiteScreenJob:
    """One allocated screen: everything a task needs to rebuild the site."""

    spec: SiteSpec
    round_index: int
    site_index: int
    draw: int
    seed: int
    policy: str = "bha"
    backend: str = "dense"
    max_stages: int = 40


@dataclass(frozen=True)
class SiteScreenOutcome:
    """What one screen sends back to the driver (plain picklable data)."""

    site_index: int
    round_index: int
    draw: int
    prevalence: float
    n_screened: int
    tests_used: int
    stages_used: int
    cases_found: int
    true_positives: int
    accuracy: float


def run_site_screen(job: SiteScreenJob) -> SiteScreenOutcome:
    """Execute one site-screen work unit (runs inside an engine task).

    The clearance threshold adapts to the day's prevalence (a decade
    below it, capped at 1%) so a cold site is never "cleared" by its
    prior alone — the allocator only learns from screens that actually
    spent tests.  ``cases_found`` counts *correctly detected* positives
    (confusion-matrix TP), which is the quantity the bandit maximises.
    """
    from repro.workflows.payloads import make_policy

    gen = np.random.default_rng(job.seed)
    prior, model, correlated = job.spec.build_day(job.round_index, gen)
    prevalence = job.spec.day_prevalence(job.round_index)
    options = ScreenOptions(
        max_stages=job.max_stages,
        negative_threshold=min(0.01, max(prevalence / 10.0, 1e-5)),
    )
    policy = make_policy(job.policy)
    if correlated:
        result = run_screen_from_space(prior, model, policy, rng=gen, options=options)
    else:
        result = screen_with_backend(
            prior, model, policy, job.backend, rng=gen, options=options
        )
    return SiteScreenOutcome(
        site_index=job.site_index,
        round_index=job.round_index,
        draw=job.draw,
        prevalence=float(prevalence),
        n_screened=result.cohort.n_items,
        tests_used=result.efficiency.num_tests,
        stages_used=result.stages_used,
        cases_found=result.confusion.true_positive,
        true_positives=result.cohort.n_positive,
        accuracy=float(result.accuracy),
    )


# ----------------------------------------------------------------------
# driver-side state
# ----------------------------------------------------------------------
class SiteState:
    """One site's running totals and prevalence belief (driver-resident)."""

    __slots__ = (
        "spec", "belief", "screens", "tests", "cases", "true_positives",
        "last_prevalence",
    )

    def __init__(self, spec: SiteSpec) -> None:
        self.spec = spec
        self.belief = SiteBelief()
        self.screens = 0
        self.tests = 0
        self.cases = 0
        self.true_positives = 0
        self.last_prevalence = spec.day_prevalence(0)

    def snapshot(self, hyper: BetaHyperprior) -> Dict[str, Any]:
        alpha, beta = self.belief.posterior(hyper)
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "prevalence": float(self.last_prevalence),
            "screens": self.screens,
            "tests": self.tests,
            "cases": self.cases,
            "true_positives": self.true_positives,
            "belief": {
                "alpha": float(alpha),
                "beta": float(beta),
                "mean": float(alpha / (alpha + beta)),
            },
        }


@dataclass(frozen=True)
class RoundSummary:
    """One finished round's totals."""

    index: int
    allocations: Tuple[int, ...]
    screens: int
    tests: int
    cases: int
    true_positives: int
    wall_s: float


@dataclass
class CampaignResult:
    """A finished (or in-progress) campaign's outcomes."""

    config: CampaignConfig
    sites: List[Dict[str, Any]]
    rounds: List[RoundSummary]
    hyperprior: BetaHyperprior

    @property
    def total_screens(self) -> int:
        return sum(r.screens for r in self.rounds)

    @property
    def total_tests(self) -> int:
        return sum(r.tests for r in self.rounds)

    @property
    def total_cases(self) -> int:
        return sum(r.cases for r in self.rounds)

    @property
    def total_true_positives(self) -> int:
        return sum(r.true_positives for r in self.rounds)

    def round_rows(self) -> List[Dict[str, Any]]:
        """JSON-ready per-round rows (wall times excluded: not replayable)."""
        return [
            {
                "round": r.index,
                "allocations": list(r.allocations),
                "screens": r.screens,
                "tests": r.tests,
                "cases": r.cases,
                "true_positives": r.true_positives,
            }
            for r in self.rounds
        ]

    def summary(self) -> Dict[str, Any]:
        screens = self.total_screens
        cases = self.total_cases
        return {
            "sites": len(self.sites),
            "rounds": len(self.rounds),
            "budget": self.config.budget,
            "allocator": self.config.allocator,
            "policy": self.config.policy,
            "backend": self.config.backend,
            "total_screens": screens,
            "total_tests": self.total_tests,
            "total_cases": cases,
            "total_true_positives": self.total_true_positives,
            "cases_per_screen": cases / screens if screens else 0.0,
            "tests_per_case": self.total_tests / cases if cases else float(self.total_tests),
            "hyperprior": {
                "alpha": float(self.hyperprior.alpha),
                "beta": float(self.hyperprior.beta),
                "mean": float(self.hyperprior.mean),
            },
        }


class Campaign:
    """K sites, one shared budget, a round-based allocate/screen/learn loop.

    Driver-resident: holds the allocator's RNG stream, the site beliefs,
    and (optionally) the engine context — never ship a campaign into a
    task.  With a context, each round's screens run as one parallel job
    graph; without one, they run serially in-process (same results, the
    per-screen seeding does not depend on execution placement).
    """

    def __init__(
        self,
        sites: Sequence[SiteSpec],
        config: Optional[CampaignConfig] = None,
        ctx=None,
        bus=None,
    ) -> None:
        if not sites:
            raise ValueError("a campaign needs at least one site")
        self.sites: Tuple[SiteSpec, ...] = tuple(sites)
        self.config = config or CampaignConfig()
        if self.config.backend != "dense":
            for spec in self.sites:
                if spec.kind == "household":
                    raise ValueError(
                        "household sites need the dense backend (their correlated "
                        "prior is a full state space)"
                    )
        self.ctx = ctx
        self.bus = bus if bus is not None else (ctx.event_bus if ctx is not None else None)
        self.allocator = make_allocator(self.config.allocator)
        self.hyperprior = BetaHyperprior()
        self.states = [SiteState(spec) for spec in self.sites]
        self.rounds: List[RoundSummary] = []
        self._alloc_rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """The next round to run (== rounds completed so far)."""
        return len(self.rounds)

    @property
    def finished(self) -> bool:
        return len(self.rounds) >= self.config.rounds

    def _post(self, event) -> None:
        if self.bus is not None:
            self.bus.post(event)

    def _execute(self, jobs: List[SiteScreenJob]) -> List[SiteScreenOutcome]:
        if not jobs:
            return []
        if self.ctx is None:
            return [run_site_screen(job) for job in jobs]
        # One job graph per round: every allocated screen is a partition.
        return (
            self.ctx.parallelize(jobs, len(jobs)).map(run_site_screen).collect()
        )

    # ------------------------------------------------------------------
    def run_round(self) -> RoundSummary:
        """Allocate, screen, and fold back one round."""
        if self.finished:
            raise RuntimeError(
                f"campaign already ran its {self.config.rounds} rounds"
            )
        r = len(self.rounds)
        cfg = self.config
        t0 = time.perf_counter()
        with ensure_trace(name=f"surveil-round-{r}"), trace_phase(
            PHASE_SURVEIL, f"round-{r}"
        ):
            self._post(RoundStart(round_index=r, budget=cfg.budget, num_sites=len(self.sites)))
            posteriors = [s.belief.posterior(self.hyperprior) for s in self.states]
            allocations = self.allocator.allocate(posteriors, cfg.budget, self._alloc_rng)
            self._post(
                BudgetAllocated(
                    round_index=r,
                    allocator=self.allocator.name,
                    allocations=tuple(allocations),
                )
            )
            jobs = [
                SiteScreenJob(
                    spec=self.sites[k],
                    round_index=r,
                    site_index=k,
                    draw=j,
                    seed=site_screen_seed(cfg.seed, r, k, j),
                    policy=cfg.policy,
                    backend=cfg.backend,
                    max_stages=cfg.max_stages,
                )
                for k, n_screens in enumerate(allocations)
                for j in range(n_screens)
            ]
            outcomes = sorted(
                self._execute(jobs), key=lambda o: (o.site_index, o.draw)
            )
            screens = tests = cases = truths = 0
            for o in outcomes:
                state = self.states[o.site_index]
                state.belief.observe(o.cases_found, o.n_screened)
                state.screens += 1
                state.tests += o.tests_used
                state.cases += o.cases_found
                state.true_positives += o.true_positives
                state.last_prevalence = o.prevalence
                screens += 1
                tests += o.tests_used
                cases += o.cases_found
                truths += o.true_positives
                self._post(
                    SiteScreened(
                        round_index=r,
                        site_index=o.site_index,
                        site=state.spec.name,
                        tests_used=o.tests_used,
                        cases_found=o.cases_found,
                        n_screened=o.n_screened,
                        belief_mean=state.belief.mean(self.hyperprior),
                    )
                )
            if cfg.learn_hyperprior:
                self.hyperprior = learn_hyperprior(
                    [s.belief for s in self.states], default=self.hyperprior
                )
            wall_s = time.perf_counter() - t0
            summary = RoundSummary(
                index=r,
                allocations=tuple(allocations),
                screens=screens,
                tests=tests,
                cases=cases,
                true_positives=truths,
                wall_s=wall_s,
            )
            self._post(
                RoundEnd(
                    round_index=r, screens=screens, tests=tests, cases=cases, wall_s=wall_s
                )
            )
        self.rounds.append(summary)
        return summary

    def run(self) -> CampaignResult:
        """Run every remaining round and return the campaign result."""
        with ensure_trace(name="surveil-campaign"):
            while not self.finished:
                self.run_round()
        return self.result()

    # ------------------------------------------------------------------
    def result(self) -> CampaignResult:
        return CampaignResult(
            config=self.config,
            sites=[s.snapshot(self.hyperprior) for s in self.states],
            rounds=list(self.rounds),
            hyperprior=self.hyperprior,
        )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready progress view (what the campaign session API serves)."""
        res = self.result()
        return {
            "summary": res.summary(),
            "sites": res.sites,
            "rounds": res.round_rows(),
            "next_round": self.round_index,
            "finished": self.finished,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Campaign(sites={len(self.sites)}, allocator={self.allocator.name!r}, "
            f"round={self.round_index}/{self.config.rounds})"
        )
