"""Budget allocators: how a round's screens get split across sites.

The campaign hands every allocator the same inputs — one Beta posterior
``(alpha, beta)`` per site and the round's screen budget — and gets back
an integer allocation summing to the budget.  Three strategies:

``ThompsonAllocator``
    Per-slot Thompson sampling (the FAAST design): for each screen in
    the budget, draw one prevalence sample per site from its posterior
    and give the slot to the argmax.  Early rounds explore (wide
    posteriors overlap), later rounds concentrate on the hot sites, and
    the exploration/exploitation trade-off needs no tuning knob.

``UniformAllocator``
    Round-robin split, rotating the remainder so no site is
    structurally favoured.  The surveillance status quo and the bench's
    baseline.

``GreedyAllocator``
    ε-greedy on posterior means: exploit the current best site, explore
    uniformly with probability ε per slot.  The classic bandit baseline
    Thompson is usually compared against.

Allocators are **driver-resident** (they hold RNG/rotation state and
drive scheduling); never ship one into an engine task.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "BudgetAllocator",
    "ThompsonAllocator",
    "UniformAllocator",
    "GreedyAllocator",
    "make_allocator",
    "ALLOCATOR_HELP",
]

ALLOCATOR_HELP = "thompson, uniform, greedy"


class BudgetAllocator(abc.ABC):
    """Strategy protocol: split a round's screen budget across sites."""

    #: CLI/API spelling (also what ``BudgetAllocated`` events report).
    name: str = "?"

    def reset(self) -> None:
        """Clear any cross-round state (rotation offsets etc.)."""

    @abc.abstractmethod
    def allocate(
        self,
        posteriors: Sequence[Tuple[float, float]],
        budget: int,
        rng: np.random.Generator,
    ) -> List[int]:
        """Return per-site screen counts summing to *budget*.

        ``posteriors[k]`` is site *k*'s Beta ``(alpha, beta)`` prevalence
        posterior.  *rng* is the campaign's allocator stream — a pure
        strategy may ignore it, but must not reseed or replace it.
        """

    def _check(self, posteriors, budget) -> Tuple[np.ndarray, np.ndarray]:
        if not posteriors:
            raise ValueError("at least one site required")
        if budget < 0:
            raise ValueError("budget must be non-negative")
        ab = np.asarray(posteriors, dtype=np.float64)
        if ab.ndim != 2 or ab.shape[1] != 2 or (ab <= 0).any():
            raise ValueError("posteriors must be positive (alpha, beta) pairs")
        return ab[:, 0], ab[:, 1]


class ThompsonAllocator(BudgetAllocator):
    """Per-slot Thompson sampling over site-prevalence posteriors."""

    name = "thompson"

    def allocate(self, posteriors, budget, rng) -> List[int]:
        alphas, betas = self._check(posteriors, budget)
        counts = [0] * len(posteriors)
        if budget == 0:
            return counts
        # One (budget, K) matrix of posterior draws; each row is a slot.
        draws = rng.beta(alphas[None, :], betas[None, :], size=(budget, len(counts)))
        for winner in np.argmax(draws, axis=1):
            counts[int(winner)] += 1
        return counts


class UniformAllocator(BudgetAllocator):
    """Round-robin split with a rotating remainder (the status quo)."""

    name = "uniform"

    def __init__(self) -> None:
        self._offset = 0

    def reset(self) -> None:
        self._offset = 0

    def allocate(self, posteriors, budget, rng) -> List[int]:
        self._check(posteriors, budget)
        k = len(posteriors)
        base, extra = divmod(budget, k)
        counts = [base] * k
        for j in range(extra):
            counts[(self._offset + j) % k] += 1
        self._offset = (self._offset + extra) % k
        return counts


class GreedyAllocator(BudgetAllocator):
    """ε-greedy on posterior-mean prevalence."""

    name = "greedy"

    def __init__(self, epsilon: float = 0.1) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        self.epsilon = epsilon

    def allocate(self, posteriors, budget, rng) -> List[int]:
        alphas, betas = self._check(posteriors, budget)
        means = alphas / (alphas + betas)
        best = int(np.argmax(means))
        counts = [0] * len(posteriors)
        for _ in range(budget):
            if self.epsilon > 0.0 and rng.random() < self.epsilon:
                counts[int(rng.integers(len(counts)))] += 1
            else:
                counts[best] += 1
        return counts


def make_allocator(name: str) -> BudgetAllocator:
    """Build an allocator from its CLI/API spelling.

    Raises :class:`ValueError` for an unknown name (callers map this to
    an argparse error or an HTTP 400 as appropriate).
    """
    if name == "thompson":
        return ThompsonAllocator()
    if name == "uniform":
        return UniformAllocator()
    if name == "greedy":
        return GreedyAllocator()
    if name.startswith("greedy-"):
        try:
            return GreedyAllocator(epsilon=float(name.split("-", 1)[1]) / 100.0)
        except ValueError as exc:
            raise ValueError(
                f"malformed allocator spec {name!r} (try: greedy-10 for ε=0.10)"
            ) from exc
    raise ValueError(f"unknown allocator {name!r} (try: {ALLOCATOR_HELP})")
