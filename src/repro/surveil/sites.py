"""Site specifications and fleet generators for multi-site campaigns.

A :class:`SiteSpec` is a frozen, picklable description of one testing
site — everything an engine task needs to *rebuild* that site's prior
and response model for a given day, without shipping any driver object.
Four generator kinds cover the paper's surveillance settings:

``uniform``
    Fixed prevalence, Beta-dispersed individual risks (the day-to-day
    workhorse; what the heterogeneous bench fleet uses).
``scenario``
    A :mod:`repro.simulate.scenario` preset (community / outbreak /
    hospital) rebuilt per day.
``epidemic``
    Prevalence follows a site-local SIR wave
    (:func:`repro.simulate.epidemic.sir_prevalence`), phase-shifted per
    site so a fleet sees staggered waves.
``household``
    A correlated :class:`~repro.bayes.correlated.HouseholdPrior`
    lattice prior (dense screens only — the correlation structure needs
    the full state space).

Fleet builders assemble tuples of specs: :func:`heterogeneous_fleet`
(log-spaced prevalences, the bandit's natural prey),
:func:`epidemic_fleet` (staggered waves), :func:`household_fleet`
(varying introduction rates), dispatched by :func:`make_fleet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.bayes.priors import PriorSpec
from repro.simulate.epidemic import sir_prevalence
from repro.simulate.scenario import get_scenario
from repro.util.validation import check_positive_int, check_probability

__all__ = [
    "SiteSpec",
    "SITE_KINDS",
    "FLEET_KINDS",
    "heterogeneous_fleet",
    "epidemic_fleet",
    "household_fleet",
    "make_fleet",
]

SITE_KINDS = ("uniform", "scenario", "epidemic", "household")
FLEET_KINDS = ("heterogeneous", "epidemic", "household")


@dataclass(frozen=True)
class SiteSpec:
    """One testing site, described by plain picklable values."""

    name: str
    cohort_size: int
    kind: str = "uniform"
    # uniform / epidemic: risk heterogeneity around the day's prevalence
    prevalence: float = 0.02
    dispersion: float = 8.0
    # scenario kind
    scenario: str = "community"
    # epidemic kind: site-local SIR wave, phase-shifted
    sir_beta: float = 0.25
    sir_gamma: float = 0.10
    sir_i0: float = 0.002
    phase: int = 0
    # household kind: correlated lattice prior
    households: Tuple[int, ...] = ()
    intro_prob: float = 0.05
    attack_rate: float = 0.5
    # assay (ignored by the scenario kind, which brings its own model)
    assay: str = "binary"
    sensitivity: float = 0.98
    specificity: float = 0.995
    dilution: float = 0.3

    def __post_init__(self) -> None:
        check_positive_int(self.cohort_size, "cohort_size")
        if self.kind not in SITE_KINDS:
            raise ValueError(f"unknown site kind {self.kind!r} (choose from {SITE_KINDS})")
        check_probability(self.prevalence, "prevalence")
        if self.kind == "scenario":
            get_scenario(self.scenario)
        if self.kind == "household":
            if not self.households:
                raise ValueError("household sites need at least one household")
            if sum(self.households) != self.cohort_size:
                raise ValueError("household sizes must sum to cohort_size")
        if self.phase < 0:
            raise ValueError("phase must be non-negative")

    # ------------------------------------------------------------------
    def day_prevalence(self, round_index: int) -> float:
        """The site's true mean prevalence on the given round/day."""
        if self.kind == "epidemic":
            series = sir_prevalence(
                self.phase + round_index + 1, self.sir_beta, self.sir_gamma, self.sir_i0
            )
            return float(np.clip(series[-1], 1e-6, 1 - 1e-6))
        if self.kind == "household":
            return self.intro_prob * self.attack_rate
        if self.kind == "scenario":
            # Presets are stationary; report the mean of the prior shape
            # (hospital's Beta-sampled risks average to its target mean).
            return float(
                np.mean(get_scenario(self.scenario).make_prior(self.cohort_size, 0).risks)
            )
        return float(np.clip(self.prevalence, 1e-6, 1 - 1e-6))

    def build_day(self, round_index: int, rng: np.random.Generator):
        """``(prior_or_space, model, correlated)`` for one day's screen.

        ``correlated`` is True for household sites, whose "prior" is a
        full :class:`~repro.lattice.states.StateSpace` and must go
        through :func:`~repro.workflows.classify.run_screen_from_space`.
        """
        from repro.workflows.payloads import make_model

        if self.kind == "scenario":
            prior, model = get_scenario(self.scenario).build(self.cohort_size, rng)
            return prior, model, False
        model = make_model(self.assay, self.sensitivity, self.specificity, self.dilution)
        if self.kind == "household":
            from repro.bayes.correlated import HouseholdPrior

            space = HouseholdPrior(
                self.households, self.intro_prob, self.attack_rate
            ).build_dense()
            return space, model, True
        prev = self.day_prevalence(round_index)
        prior = PriorSpec.sampled(self.cohort_size, prev, self.dispersion, rng)
        return prior, model, False


# ----------------------------------------------------------------------
# fleet builders
# ----------------------------------------------------------------------
def heterogeneous_fleet(
    num_sites: int,
    cohort_size: int = 10,
    seed: int = 0,
    low: float = 0.005,
    high: float = 0.12,
    dispersion: float = 12.0,
    assay: str = "binary",
    sensitivity: float = 0.98,
    specificity: float = 0.995,
    dilution: float = 0.3,
) -> Tuple[SiteSpec, ...]:
    """Sites with log-spaced prevalences from *low* to *high*, shuffled.

    The canonical bandit testbed: a few genuinely hot sites hide among
    many cold ones, and the shuffle (seeded) stops position from
    correlating with prevalence.
    """
    check_positive_int(num_sites, "num_sites")
    prevs = np.geomspace(low, high, num_sites)
    order = np.random.default_rng(seed).permutation(num_sites)
    return tuple(
        SiteSpec(
            name=f"site-{k:02d}",
            cohort_size=cohort_size,
            kind="uniform",
            prevalence=float(prevs[order[k]]),
            dispersion=dispersion,
            assay=assay,
            sensitivity=sensitivity,
            specificity=specificity,
            dilution=dilution,
        )
        for k in range(num_sites)
    )


def epidemic_fleet(
    num_sites: int,
    cohort_size: int = 10,
    seed: int = 0,
    stagger_days: int = 12,
    assay: str = "binary",
    sensitivity: float = 0.98,
    specificity: float = 0.995,
    dilution: float = 0.3,
) -> Tuple[SiteSpec, ...]:
    """Sites riding SIR waves whose onsets are staggered across the fleet.

    Site *k*'s wave is ``k * stagger_days`` further along (with mild
    seeded jitter in the transmission rate), so on any given round some
    sites sit pre-wave, some at peak, some in decline — the prevalence
    landscape the allocator must keep re-learning.
    """
    check_positive_int(num_sites, "num_sites")
    gen = np.random.default_rng(seed)
    jitter = gen.uniform(0.9, 1.1, size=num_sites)
    return tuple(
        SiteSpec(
            name=f"site-{k:02d}",
            cohort_size=cohort_size,
            kind="epidemic",
            sir_beta=float(0.25 * jitter[k]),
            phase=k * stagger_days,
            assay=assay,
            sensitivity=sensitivity,
            specificity=specificity,
            dilution=dilution,
        )
        for k in range(num_sites)
    )


def household_fleet(
    num_sites: int,
    cohort_size: int = 9,
    household_size: int = 3,
    seed: int = 0,
    low_intro: float = 0.02,
    high_intro: float = 0.25,
    attack_rate: float = 0.5,
    sensitivity: float = 0.98,
    specificity: float = 0.995,
) -> Tuple[SiteSpec, ...]:
    """Correlated household sites with log-spaced introduction rates."""
    check_positive_int(num_sites, "num_sites")
    if cohort_size % household_size:
        raise ValueError("cohort_size must be a multiple of household_size")
    intros = np.geomspace(low_intro, high_intro, num_sites)
    order = np.random.default_rng(seed).permutation(num_sites)
    households = tuple([household_size] * (cohort_size // household_size))
    return tuple(
        SiteSpec(
            name=f"site-{k:02d}",
            cohort_size=cohort_size,
            kind="household",
            households=households,
            intro_prob=float(intros[order[k]]),
            attack_rate=attack_rate,
            assay="binary",
            sensitivity=sensitivity,
            specificity=specificity,
        )
        for k in range(num_sites)
    )


def make_fleet(
    kind: str, num_sites: int, cohort_size: int = 10, seed: int = 0, **overrides
) -> Tuple[SiteSpec, ...]:
    """Build a fleet by name (``heterogeneous`` / ``epidemic`` / ``household``).

    Raises :class:`ValueError` for an unknown kind (callers map this to
    an argparse error or an HTTP 400 as appropriate).
    """
    if kind == "heterogeneous":
        return heterogeneous_fleet(num_sites, cohort_size, seed, **overrides)
    if kind == "epidemic":
        return epidemic_fleet(num_sites, cohort_size, seed, **overrides)
    if kind == "household":
        return household_fleet(num_sites, cohort_size, seed=seed, **overrides)
    raise ValueError(f"unknown fleet kind {kind!r} (choose from {FLEET_KINDS})")
