"""Campaign lifecycle events on the engine's listener bus.

The surveillance orchestrator narrates each round on the **same**
:class:`~repro.engine.listener.EventBus` the engine and the serving
layer post on, so one subscriber — the flight recorder, the tracer, a
metrics listener — sees allocation decisions interleaved with the
job/stage/task events of the screens they caused.  Every event inherits
the trace/phase stamping of :class:`EngineEvent`, which is what lets a
whole campaign render as one correlated Chrome trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.engine.listener import EngineEvent, register_event_type

__all__ = ["RoundStart", "BudgetAllocated", "SiteScreened", "RoundEnd"]

#: Phase label campaign rounds run under (shows on the tracer timeline).
PHASE_SURVEIL = "surveil"


@dataclass
class RoundStart(EngineEvent):
    """A campaign round began: ``budget`` screens to split over ``num_sites``."""

    round_index: int
    budget: int
    num_sites: int


@dataclass
class BudgetAllocated(EngineEvent):
    """The allocator split the round's budget (``allocations[k]`` screens to site k)."""

    round_index: int
    allocator: str
    allocations: Tuple[int, ...]


@dataclass
class SiteScreened(EngineEvent):
    """One allocated screen at one site finished and was folded into beliefs."""

    round_index: int
    site_index: int
    site: str
    tests_used: int
    cases_found: int
    n_screened: int
    belief_mean: float


@dataclass
class RoundEnd(EngineEvent):
    """The round's screens all folded back; carries the round's wall time."""

    round_index: int
    screens: int
    tests: int
    cases: int
    wall_s: float


register_event_type(RoundStart, "surveil_round_start")
register_event_type(BudgetAllocated, "surveil_budget_allocated")
register_event_type(SiteScreened, "surveil_site_screened")
register_event_type(RoundEnd, "surveil_round_end")
