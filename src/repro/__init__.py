"""SBGT: Scaling Bayesian-based Group Testing for Disease Surveillance.

Reproduction of Chen, Qi, Lu & Tatsuoka (IPDPS 2023).  The package
layers:

* :mod:`repro.engine` — a from-scratch Spark-like dataflow engine (the
  substrate SBGT distributes over);
* :mod:`repro.lattice`, :mod:`repro.bayes`, :mod:`repro.halving` — the
  Bayesian lattice group-testing framework (priors, dilution response
  models, posterior updates, the Bayesian Halving Algorithm and
  look-ahead rules);
* :mod:`repro.sbgt` — the paper's contribution: distributed lattice
  manipulation, test selection and statistical analysis;
* :mod:`repro.baseline`, :mod:`repro.simulate`, :mod:`repro.metrics`,
  :mod:`repro.workflows` — comparators, synthetic surveillance
  workloads, and end-to-end drivers.

Quickstart::

    from repro import Context, PriorSpec, DilutionErrorModel, SBGTSession, BHAPolicy

    with Context(parallelism=4) as ctx:
        prior = PriorSpec.uniform(16, 0.02)
        model = DilutionErrorModel(sensitivity=0.98, specificity=0.995)
        session = SBGTSession(ctx, prior, model)
        result = session.run_screen(BHAPolicy(), rng=0)
        print(result.report.positives(), result.tests_per_individual)
"""

from repro.engine import Context, EngineConfig
from repro.bayes import (
    PriorSpec,
    PerfectTest,
    BinaryErrorModel,
    DilutionErrorModel,
    LogNormalViralLoadModel,
    Posterior,
    Classification,
)
from repro.halving import (
    BHAPolicy,
    LookaheadPolicy,
    InformationGainPolicy,
    IndividualTestingPolicy,
    DorfmanPolicy,
    PrefixCandidates,
    ExhaustiveCandidates,
)
from repro.engine import EngineListener, EventBus, RecordingListener
from repro.obs import Tracer, trace_phase
from repro.sbgt import (
    SBGTSession,
    SBGTConfig,
    PosteriorBackend,
    DistributedLattice,
    SparsePosterior,
    ParticlePosterior,
    DistributedAnalyzer,
)
from repro.simulate import Cohort, make_cohort, TestLab, get_scenario
from repro.workflows import ScreenOptions, run_screen, run_surveillance, pooling_calculator

__version__ = "1.0.0"

__all__ = [
    "Context",
    "EngineConfig",
    "PriorSpec",
    "PerfectTest",
    "BinaryErrorModel",
    "DilutionErrorModel",
    "LogNormalViralLoadModel",
    "Posterior",
    "Classification",
    "BHAPolicy",
    "LookaheadPolicy",
    "InformationGainPolicy",
    "IndividualTestingPolicy",
    "DorfmanPolicy",
    "PrefixCandidates",
    "ExhaustiveCandidates",
    "SBGTSession",
    "SBGTConfig",
    "PosteriorBackend",
    "DistributedLattice",
    "SparsePosterior",
    "ParticlePosterior",
    "DistributedAnalyzer",
    "Cohort",
    "make_cohort",
    "TestLab",
    "get_scenario",
    "run_screen",
    "run_surveillance",
    "pooling_calculator",
    "ScreenOptions",
    "EngineListener",
    "EventBus",
    "RecordingListener",
    "Tracer",
    "trace_phase",
    "__version__",
]
