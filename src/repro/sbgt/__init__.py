"""SBGT: the paper's contribution — Bayesian group testing on a dataflow engine.

The lattice state space becomes an RDD of NumPy blocks; the three
operation classes the paper accelerates map onto engine primitives:

* lattice manipulation — distributed prior construction, single-pass
  Bayes updates with deferred normalisation, conditioning,
  histogram-guided pruning (:class:`DistributedLattice`);
* test selection — broadcast candidate pools, per-partition down-set
  partials, tree-reduced arg-min (:mod:`repro.sbgt.selector`);
* statistical analysis — marginals, entropy, top states and
  classification reports as tree aggregations (:class:`DistributedAnalyzer`).

:class:`SBGTSession` drives a full sequential screen with the same
protocol and result type as the serial reference driver.

Posteriors are pluggable: every consumer speaks the
:class:`PosteriorBackend` protocol, with the dense
:class:`DistributedLattice` as the exact implementation and
:class:`SparsePosterior` (explicit above-floor states) and
:class:`ParticlePosterior` (SMC cloud) as approximate implementations
that scale past the dense 2^N wall to cohorts in the hundreds.
"""

from repro.sbgt.backend import PosteriorBackend
from repro.sbgt.config import SBGTConfig
from repro.sbgt.distributed_lattice import DistributedLattice
from repro.sbgt.selector import (
    down_set_masses_distributed,
    select_halving_pool_distributed,
    select_infogain_pool_distributed,
    select_lookahead_pools_distributed,
)
from repro.sbgt.analyzer import DistributedAnalyzer
from repro.sbgt.particle import ParticlePosterior
from repro.sbgt.session import SBGTSession
from repro.sbgt.sparse import SparsePosterior
from repro.sbgt.stepper import ScreenStepper

__all__ = [
    "SBGTConfig",
    "PosteriorBackend",
    "DistributedLattice",
    "SparsePosterior",
    "ParticlePosterior",
    "DistributedAnalyzer",
    "SBGTSession",
    "ScreenStepper",
    "down_set_masses_distributed",
    "select_halving_pool_distributed",
    "select_infogain_pool_distributed",
    "select_lookahead_pools_distributed",
]
