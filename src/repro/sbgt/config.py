"""SBGT tuning knobs."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional  # noqa: F401 - used in field annotation

__all__ = ["SBGTConfig"]


@dataclass(frozen=True)
class SBGTConfig:
    """Settings of a distributed group-testing session.

    Parameters
    ----------
    num_blocks:
        How many lattice blocks (RDD records ≈ parallel tasks) the state
        space is split into.  ``0`` = the context's default parallelism.
    prune_epsilon:
        After-stage pruning keeps the ``1-ε`` high-mass core; ``0``
        disables pruning (exact inference).
    prune_interval:
        Prune every this-many stages (when pruning is enabled).
    rebalance_states:
        When pruning shrinks the lattice below this many states, the
        session collects and redistributes it so tasks stay balanced.
    positive_threshold / negative_threshold:
        Classification cut-offs on the posterior marginals.
    max_stages:
        Stage budget for a screen.
    track_entropy:
        Record entropy before/after each test (extra aggregation pass).
    compact_classified:
        Lattice contraction: when an individual's diagnosis settles,
        condition on it and project their bit out of every state,
        halving the representable index space.  Commits the diagnosis —
        a later reversal is impossible — which is the standard
        sequential-classification semantics, but means threshold errors
        freeze; keep thresholds strict when enabling.
    max_positives:
        When set, build the rank-restricted lattice (states with at most
        this many infected) instead of the dense ``2^n`` one.  Makes
        cohorts far beyond dense reach tractable (support size
        ``Σ C(n, k)``); the discarded prior tail is exposed as
        ``SBGTSession.log_discarded_prior``.  A cohort whose true
        positive count exceeds the cap cannot be represented — size the
        cap from the prior (e.g. mean + several binomial sd).
    backend:
        Posterior representation: ``"dense"`` (the distributed lattice —
        exact, needs an engine context, cohorts ≤ 30 dense / ≤ 64
        restricted), ``"sparse"`` (driver-resident above-floor states —
        exact at ``sparse_floor=0`` on its support, any cohort size), or
        ``"particle"`` (SMC particle cloud — approximate, any cohort
        size).
    sparse_floor:
        Sparse backend: drop states whose posterior probability falls
        below this after each update (``0`` = keep everything).
    max_states:
        Sparse backend: cap on explicit states when seeding the support
        from the prior's rank levels.
    num_particles / ess_threshold:
        Particle backend: cloud size, and the ESS fraction under which
        the cloud resamples and rejuvenates.
    backend_seed:
        Particle backend: seed for the backend's own RNG stream (kept
        separate from the screen's outcome-simulation stream so pool
        selection noise never perturbs simulated truths).
    """

    num_blocks: int = 0
    prune_epsilon: float = 0.0
    prune_interval: int = 1
    rebalance_states: int = 1 << 14
    positive_threshold: float = 0.99
    negative_threshold: float = 0.01
    max_stages: int = 50
    track_entropy: bool = False
    compact_classified: bool = False
    max_positives: Optional[int] = None
    backend: str = "dense"
    sparse_floor: float = 1e-9
    max_states: int = 1 << 17
    num_particles: int = 2048
    ess_threshold: float = 0.5
    backend_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks < 0:
            raise ValueError("num_blocks must be >= 0")
        if not 0.0 <= self.prune_epsilon < 1.0:
            raise ValueError("prune_epsilon must be in [0, 1)")
        if self.prune_interval < 1:
            raise ValueError("prune_interval must be >= 1")
        if not 0.0 <= self.negative_threshold < self.positive_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= neg < pos <= 1")
        if self.max_stages < 1:
            raise ValueError("max_stages must be >= 1")
        if self.max_positives is not None and self.max_positives < 1:
            raise ValueError("max_positives must be >= 1 when set")
        if self.backend not in ("dense", "sparse", "particle"):
            raise ValueError("backend must be one of: dense, sparse, particle")
        if not 0.0 <= self.sparse_floor < 1.0:
            raise ValueError("sparse_floor must be in [0, 1)")
        if self.max_states < 1:
            raise ValueError("max_states must be >= 1")
        if self.num_particles < 2:
            raise ValueError("num_particles must be >= 2")
        if not 0.0 <= self.ess_threshold <= 1.0:
            raise ValueError("ess_threshold must be in [0, 1]")

    def with_(self, **kwargs) -> "SBGTConfig":
        return replace(self, **kwargs)
