"""Statistical analyses over a posterior backend (operation class R3).

Everything a surveillance program reads off the posterior — marginals,
classification reports, entropy, credible state sets — phrased against
the :class:`~repro.sbgt.backend.PosteriorBackend` protocol, returning
the same objects as the serial analyses so reports are interchangeable.
On the dense lattice each read is a tree aggregation over the engine; on
the sparse/particle backends it is driver-local NumPy — the analyzer
cannot tell and does not care.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.bayes.posterior import Classification, ClassificationReport
from repro.obs.tracer import PHASE_ANALYSIS, traced
from repro.sbgt.backend import PosteriorBackend

__all__ = ["DistributedAnalyzer"]


class DistributedAnalyzer:
    """Read-only statistical views of a :class:`PosteriorBackend`."""

    def __init__(self, lattice: PosteriorBackend) -> None:
        self.lattice = lattice

    def marginals(self) -> np.ndarray:
        """Per-individual posterior infection probability."""
        return self.lattice.marginals()

    def entropy(self) -> float:
        """Posterior Shannon entropy (nats)."""
        return self.lattice.entropy()

    def map_state(self) -> int:
        """Most probable infection pattern."""
        return self.lattice.map_state()

    def top_states(self, k: int) -> List[Tuple[int, float]]:
        """Top-k states with normalised probabilities."""
        return self.lattice.top_states(k)

    @traced(PHASE_ANALYSIS, "credible_states")
    def credible_states(self, mass: float = 0.95, limit: int = 4096) -> List[Tuple[int, float]]:
        """Smallest set of top states jointly covering ≥ *mass*.

        ``limit`` bounds the candidate set fetched from the cluster; if
        the credible set is larger than *limit* the call raises rather
        than silently truncating.
        """
        if not 0.0 < mass <= 1.0:
            raise ValueError("mass must be in (0, 1]")
        top = self.lattice.top_states(limit)
        out: List[Tuple[int, float]] = []
        acc = 0.0
        for state, p in top:
            out.append((state, p))
            acc += p
            if acc >= mass:
                return out
        raise ValueError(
            f"credible set exceeds limit={limit} states (covered {acc:.4f} of {mass})"
        )

    @traced(PHASE_ANALYSIS, "classify")
    def classify(
        self, positive_threshold: float = 0.99, negative_threshold: float = 0.01
    ) -> ClassificationReport:
        """Threshold the marginals into a classification report."""
        if not 0.0 <= negative_threshold < positive_threshold <= 1.0:
            raise ValueError("need 0 <= negative_threshold < positive_threshold <= 1")
        marg = self.marginals()
        statuses = tuple(
            Classification.POSITIVE
            if m >= positive_threshold
            else Classification.NEGATIVE
            if m <= negative_threshold
            else Classification.UNDETERMINED
            for m in marg
        )
        return ClassificationReport(marginals=marg, statuses=statuses)
