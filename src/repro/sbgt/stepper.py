"""Stage-by-stage driver of a distributed screen.

:meth:`SBGTSession.run_screen` historically owned the whole
classify/select/assay/update loop, which welded the *protocol* (what
happens each stage) to the *assay source* (a simulated
:class:`~repro.simulate.testing.TestLab`).  An interactive deployment —
the serving layer, a real laboratory — needs the same protocol with the
outcomes arriving from outside.  :class:`ScreenStepper` is that
extraction: it owns stage sequencing, stopping checks, pruning,
classification and compaction, while the caller supplies outcomes for
the pools it proposes.

The batch path (:meth:`SBGTSession.run_screen`) is now a thin loop over
a stepper plus a virtual lab, so interactive and batch screens are the
*same code* and produce byte-identical classifications from equal seeds.

Protocol::

    stepper = ScreenStepper(session, policy)
    while not stepper.done:
        pools = stepper.next_pools()          # original-index masks
        stepper.submit_outcomes([assay(p) for p in pools])
    report = stepper.report                   # final ClassificationReport
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, List, Optional, Sequence

from repro.bayes.evidence import TestRecord
from repro.engine.tracing import current_trace, trace_scope
from repro.halving.policy import SelectionPolicy
from repro.metrics.classification import evaluate_classification
from repro.metrics.efficiency import efficiency_report
from repro.obs.tracer import current_tracer
from repro.simulate.population import Cohort

__all__ = ["ScreenStepper"]


class ScreenStepper:
    """Drives one screen on an :class:`~repro.sbgt.session.SBGTSession`.

    The stepper advances in stages: :meth:`next_pools` proposes the
    coming stage's pools (idempotent until outcomes arrive), then
    :meth:`submit_outcomes` conditions the lattice on the assay results
    and re-classifies.  ``done`` flips when every individual is settled,
    the stopping rule fires, or the stage budget runs out.

    Parameters
    ----------
    session:
        The live :class:`~repro.sbgt.session.SBGTSession`; its
        ``config`` supplies thresholds, stage budget and pruning.
    policy:
        Selection policy (reset on construction, exactly like the
        batch loop did).
    stopping_rule:
        Optional :class:`~repro.halving.stopping.LossBasedStopping`;
        when it fires the final report carries loss-optimal calls.
    """

    def __init__(
        self,
        session,
        policy: SelectionPolicy,
        stopping_rule=None,
    ) -> None:
        self.session = session
        self.policy = policy
        self.stopping_rule = stopping_rule
        policy.reset()
        self.stages_used = 0
        self.exhausted_budget = False
        self.stopped_by_rule = False
        self.num_tests = 0
        self.num_samples = 0
        self._pending: Optional[List[int]] = None
        self._done = False
        self.report = session.classify()
        session._compact_settled(self.report)
        self._check_done()

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the screen has terminated (no more pools)."""
        return self._done

    @property
    def pending_pools(self) -> Optional[List[int]]:
        """Pools proposed but not yet answered (None when none are out)."""
        return list(self._pending) if self._pending is not None else None

    def _stage_scope(self, step: str):
        """Child span for one stage step, only when a trace is active.

        Keeps every engine event of the step under the screen's (or
        request's) trace_id with a per-stage span, without minting
        orphan root traces for uncorrelated callers.
        """
        if current_trace() is None:
            return nullcontext()
        return trace_scope(name=f"stage-{self.stages_used + 1}-{step}")

    def _check_done(self) -> None:
        # Mirrors the batch loop's check order: full classification ends
        # the screen, then the loss-based rule, then the stage budget.
        if self.report.all_classified:
            self._done = True
            return
        if self.stopping_rule is not None and self.stopping_rule.should_stop(
            self.report.marginals
        ):
            from repro.workflows.classify import _loss_final_report

            self.report = _loss_final_report(self.report.marginals, self.stopping_rule)
            self.stopped_by_rule = True
            self._done = True
            return
        if self.stages_used >= self.session.config.max_stages:
            self.exhausted_budget = True
            self._done = True

    # ------------------------------------------------------------------
    def next_pools(self) -> List[int]:
        """Propose the coming stage's pools (original-index masks).

        Returns ``[]`` once the screen is done.  Calling again before
        outcomes are submitted returns the same proposal (idempotent),
        so a disconnecting client can safely re-fetch.
        """
        if self._done:
            return []
        if self._pending is None:
            eligible = 0
            for i in self.report.undetermined():
                eligible |= 1 << i
            with self._stage_scope("select"):
                pools = self.session.select_pools(self.policy, eligible)
            if not pools:
                raise RuntimeError(f"policy {self.policy.name} proposed no pools")
            self._pending = [int(p) for p in pools]
        return list(self._pending)

    def submit_outcomes(self, outcomes: Sequence[Any]) -> List[TestRecord]:
        """Condition on one stage's assay results, in proposal order."""
        if self._done:
            raise RuntimeError("screen already finished")
        if self._pending is None:
            raise RuntimeError("no pools outstanding; call next_pools() first")
        if len(outcomes) != len(self._pending):
            raise ValueError(
                f"expected {len(self._pending)} outcome(s) for the proposed "
                f"pools, got {len(outcomes)}"
            )
        session = self.session
        session.begin_stage()
        tracer = current_tracer()
        if tracer is not None:
            tracer.begin_screen_stage(session._stage)
        records: List[TestRecord] = []
        with self._stage_scope("update"):
            for pool, outcome in zip(self._pending, outcomes):
                records.append(session.update(pool, outcome))
                self.num_tests += 1
                self.num_samples += bin(pool).count("1")
            prune_stats = session.prune()
            self.report = session.classify()
            session._compact_settled(self.report)
        self.stages_used += 1
        if tracer is not None:
            drop = None
            if (
                records
                and records[0].entropy_before is not None
                and records[-1].entropy_after is not None
            ):
                drop = records[0].entropy_before - records[-1].entropy_after
            tracer.end_screen_stage(
                pools_proposed=len(self._pending),
                tests_run=len(records),
                entropy_drop=drop,
                states_pruned=prune_stats.dropped_states if prune_stats else 0,
            )
        self._pending = None
        self._check_done()
        return records

    # ------------------------------------------------------------------
    def result(self, cohort: Cohort):
        """Score the finished screen against *cohort*'s ground truth."""
        from repro.workflows.classify import ScreenResult

        if not self._done:
            raise RuntimeError("screen still in progress")
        confusion = evaluate_classification(self.report, cohort.truth_mask)
        eff = efficiency_report(
            cohort.n_items, self.num_tests, self.stages_used, self.num_samples
        )
        return ScreenResult(
            cohort=cohort,
            report=self.report,
            confusion=confusion,
            efficiency=eff,
            posterior=self.session,  # duck-typed: exposes marginals/entropy/log
            stages_used=self.stages_used,
            exhausted_budget=self.exhausted_budget,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._done else f"stage {self.stages_used}"
        return f"ScreenStepper(policy={self.policy.name}, {state}, tests={self.num_tests})"
