"""Particle posterior backend: SMC over infection states.

A weighted particle cloud in the spirit of Cuturi et al.'s sequential
experimental design for group testing: each particle is one candidate
infection pattern (a boolean row), updates reweight by the pooled-test
likelihood, and when the effective sample size collapses the cloud is
systematically resampled and rejuvenated with single-bit
Metropolis-Hastings moves targeting the exact posterior
``prior × recorded evidence`` (the IBIS recipe for static models — the
evidence trail the backend keeps is exactly the MH target).

Everything is driver-resident NumPy; determinism comes from the
library's standard RNG plumbing (:func:`repro.util.rng.as_rng`), so a
seeded screen replays bit-identically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import logsumexp

from repro.bayes.priors import PriorSpec
from repro.lattice.prune import PruneStats
from repro.lattice.states import StateSpace
from repro.obs.tracer import PHASE_ANALYSIS, PHASE_LATTICE, PHASE_SELECTION, traced
from repro.sbgt.backend import PosteriorBackend
from repro.sbgt.sparse import (
    _pool_columns,
    matrix_count_distribution,
    matrix_down_set_masses,
    matrix_pool_count_hists,
    matrix_refined_cell_masses,
    matrix_row_mask,
)
from repro.util.rng import RngLike, as_rng

__all__ = ["ParticlePosterior"]


class _Evidence:
    """One recorded pooled outcome, in live-column coordinates.

    ``base`` counts settled-positive pool members whose columns were
    projected out after the test was recorded; the likelihood lookup
    index is ``base + positives among live columns``.
    """

    __slots__ = ("cols", "ll", "base")

    def __init__(self, cols: np.ndarray, ll: np.ndarray, base: int = 0) -> None:
        self.cols = cols
        self.ll = ll
        self.base = base


class ParticlePosterior(PosteriorBackend):
    """Weighted-particle belief state (approximate, any cohort size).

    Parameters
    ----------
    prior:
        Per-individual risks; particles are initialised by independent
        Bernoulli draws from it and MH rejuvenation targets it exactly.
    num_particles:
        Cloud size; error scales ~1/sqrt(num_particles).
    rng:
        Seed / generator through the standard plumbing — the only source
        of randomness in the backend.
    ess_threshold:
        Resample when effective sample size falls below this fraction of
        the cloud.
    rejuvenation_sweeps:
        Single-bit MH sweeps over the cloud after each resample.
    """

    def __init__(
        self,
        prior: PriorSpec,
        num_particles: int = 2048,
        rng: RngLike = None,
        ess_threshold: float = 0.5,
        rejuvenation_sweeps: int = 2,
    ) -> None:
        if num_particles < 2:
            raise ValueError("num_particles must be at least 2")
        if not 0.0 <= ess_threshold <= 1.0:
            raise ValueError("ess_threshold must be in [0, 1]")
        self.n_items = int(prior.n_items)
        self.num_particles = int(num_particles)
        self.ess_threshold = float(ess_threshold)
        self.rejuvenation_sweeps = int(rejuvenation_sweeps)
        self.rng = as_rng(rng)
        risks = np.clip(np.asarray(prior.risks, dtype=np.float64), 1e-12, 1 - 1e-12)
        self._risks = risks.copy()
        self.states = self.rng.random((self.num_particles, self.n_items)) < risks
        self.log_weights = np.full(self.num_particles, -np.log(self.num_particles))
        self._evidence: List[_Evidence] = []
        #: Particle approximations carry no support restriction.
        self.log_discarded_prior = -np.inf

    @classmethod
    def from_prior(
        cls,
        prior: PriorSpec,
        num_particles: int = 2048,
        rng: RngLike = None,
        ess_threshold: float = 0.5,
    ) -> "ParticlePosterior":
        return cls(prior, num_particles=num_particles, rng=rng, ess_threshold=ess_threshold)

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------
    def _probs(self) -> np.ndarray:
        return np.exp(self.log_weights)

    def _normalize(self) -> None:
        total = float(logsumexp(self.log_weights))
        if not np.isfinite(total):
            raise ValueError("posterior has zero total mass (contradictory evidence?)")
        self.log_weights -= total

    def _ess(self) -> float:
        w = self._probs()
        return float(1.0 / np.sum(w * w))

    def _maybe_resample(self) -> None:
        if self._ess() < self.ess_threshold * self.num_particles:
            self._resample()
            self._rejuvenate()

    def _resample(self) -> None:
        """Systematic resampling: one uniform draw, stratified positions."""
        w = self._probs()
        positions = (np.arange(self.num_particles) + self.rng.random()) / self.num_particles
        cum = np.cumsum(w)
        cum[-1] = 1.0  # guard float drift at the top edge
        idx = np.searchsorted(cum, positions, side="right")
        self.states = self.states[idx].copy()
        self.log_weights = np.full(self.num_particles, -np.log(self.num_particles))

    def _rejuvenate(self) -> None:
        """Single-bit MH sweeps targeting prior × recorded evidence."""
        n, m = self.n_items, self.num_particles
        logit = np.log(self._risks) - np.log1p(-self._risks)
        rows = np.arange(m)
        for _ in range(self.rejuvenation_sweeps):
            j = self.rng.integers(0, n, size=m)
            v = self.states[rows, j]
            sign = np.where(v, -1, 1)  # flipping adds/removes one positive
            log_accept = sign * logit[j]
            for ev in self._evidence:
                pool_vec = np.zeros(n, dtype=bool)
                pool_vec[ev.cols] = True
                in_pool = pool_vec[j]
                counts = ev.base + self.states[:, ev.cols].sum(axis=1)
                counts_new = counts + np.where(in_pool, sign, 0)
                log_accept += ev.ll[counts_new] - ev.ll[counts]
            accept = np.log(self.rng.random(m)) < log_accept
            self.states[rows[accept], j[accept]] ^= True

    # ------------------------------------------------------------------
    # lattice manipulation (R1)
    # ------------------------------------------------------------------
    @traced(PHASE_LATTICE, "particle_update")
    def update(self, pool_mask: int, log_lik_by_count: np.ndarray) -> float:
        ll = np.asarray(log_lik_by_count, dtype=np.float64)
        cols = _pool_columns(pool_mask, self.n_items)
        counts = self.states[:, cols].sum(axis=1)
        new_lw = self.log_weights + ll[counts]
        log_pred = float(logsumexp(new_lw))  # prior weights are normalised
        if not np.isfinite(log_pred):
            raise ValueError("observed outcome has zero probability under the model")
        self.log_weights = new_lw - log_pred
        self._evidence.append(_Evidence(cols, ll))
        self._maybe_resample()
        return log_pred

    @traced(PHASE_LATTICE, "particle_condition")
    def condition(self, positive_mask: int = 0, negative_mask: int = 0) -> None:
        if int(positive_mask) & int(negative_mask):
            raise ValueError("an individual cannot be classified both ways")
        pos = _pool_columns(positive_mask, self.n_items)
        neg = _pool_columns(negative_mask, self.n_items)
        ok = np.ones(self.num_particles, dtype=bool)
        if pos.size:
            ok &= self.states[:, pos].all(axis=1)
        if neg.size:
            ok &= ~self.states[:, neg].any(axis=1)
        self.log_weights = np.where(ok, self.log_weights, -np.inf)
        # Record the constraints so MH rejuvenation cannot move particles
        # back out of the conditioned region.
        hard_pos = np.array([-np.inf, 0.0])
        hard_neg = np.array([0.0, -np.inf])
        for i in pos:
            self._evidence.append(_Evidence(np.array([i], dtype=np.intp), hard_pos))
        for i in neg:
            self._evidence.append(_Evidence(np.array([i], dtype=np.intp), hard_neg))
        self._normalize()
        self._maybe_resample()

    def prune(self, epsilon: float) -> PruneStats:
        """Particle clouds have nothing to prune — fixed-size representation."""
        if not 0.0 <= epsilon < 1.0:
            raise ValueError("epsilon must be in [0, 1)")
        return PruneStats(self.num_states(), 0, 0.0)

    @traced(PHASE_LATTICE, "particle_project_out_bit")
    def project_out_bit(self, bit: int, keep_positive: bool) -> None:
        if not 0 <= bit < self.n_items:
            raise ValueError(f"bit {bit} outside [0, {self.n_items})")
        if self.n_items == 1:
            raise ValueError("cannot project the last remaining individual out")
        agrees = self.states[:, bit] == keep_positive
        if agrees.any():
            self.log_weights = np.where(agrees, self.log_weights, -np.inf)
        else:
            # Degenerate cloud: no particle carries the committed value.
            # The diagnosis is already decided, so force the column
            # rather than dying — an approximation the dense backend
            # never needs.
            self.states[:, bit] = keep_positive
        self.states = np.ascontiguousarray(np.delete(self.states, bit, axis=1))
        self.n_items -= 1
        self._risks = np.delete(self._risks, bit)
        for ev in self._evidence:
            in_pool = ev.cols == bit
            if in_pool.any():
                ev.cols = ev.cols[~in_pool]
                if keep_positive:
                    ev.base += 1
            ev.cols = np.where(ev.cols > bit, ev.cols - 1, ev.cols)
        self._normalize()
        self._maybe_resample()

    # ------------------------------------------------------------------
    # test selection statistics (R2)
    # ------------------------------------------------------------------
    @traced(PHASE_SELECTION, "particle_down_set_masses")
    def down_set_masses(self, pool_masks: np.ndarray) -> np.ndarray:
        return matrix_down_set_masses(self.states, self._probs(), pool_masks, self.n_items)

    @traced(PHASE_SELECTION, "particle_count_distribution")
    def count_distribution(self, pool_mask: int) -> np.ndarray:
        return matrix_count_distribution(self.states, self._probs(), pool_mask, self.n_items)

    @traced(PHASE_SELECTION, "particle_pool_count_hists")
    def pool_count_hists(self, candidate_masks: np.ndarray) -> np.ndarray:
        return matrix_pool_count_hists(self.states, self._probs(), candidate_masks, self.n_items)

    @traced(PHASE_SELECTION, "particle_refined_cell_masses")
    def refined_cell_masses(
        self, chosen: Sequence[int], candidate_masks: np.ndarray, n_cells: int
    ) -> np.ndarray:
        return matrix_refined_cell_masses(
            self.states, self._probs(), chosen, candidate_masks, n_cells, self.n_items
        )

    # ------------------------------------------------------------------
    # statistical analysis (R3)
    # ------------------------------------------------------------------
    @traced(PHASE_ANALYSIS, "particle_marginals")
    def marginals(self) -> np.ndarray:
        return self._probs() @ self.states.astype(np.float64)

    def _aggregate_unique(self) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct particle states with their total weights."""
        uniq, inverse = np.unique(self.states, axis=0, return_inverse=True)
        weights = np.bincount(inverse.ravel(), weights=self._probs(), minlength=uniq.shape[0])
        return uniq, weights

    @traced(PHASE_ANALYSIS, "particle_entropy")
    def entropy(self) -> float:
        _, weights = self._aggregate_unique()
        nz = weights > 0.0
        return float(-np.sum(weights[nz] * np.log(weights[nz])))

    @traced(PHASE_ANALYSIS, "particle_top_states")
    def top_states(self, k: int) -> List[Tuple[int, float]]:
        if k <= 0:
            return []
        uniq, weights = self._aggregate_unique()
        k = min(k, uniq.shape[0])
        idx = np.argsort(-weights, kind="stable")[:k]
        return [(matrix_row_mask(uniq[i]), float(weights[i])) for i in idx]

    def num_states(self) -> int:
        return self.num_particles

    def collect(self) -> StateSpace:
        if self.n_items > 64:
            raise ValueError(
                "cannot collect a >64-individual particle posterior into a "
                "uint64-masked StateSpace"
            )
        uniq, weights = self._aggregate_unique()
        keep = weights > 0.0
        uniq, weights = uniq[keep], weights[keep]
        masks = np.zeros(uniq.shape[0], dtype=np.uint64)
        for i in range(self.n_items):
            masks |= uniq[:, i].astype(np.uint64) << np.uint64(i)
        order = np.argsort(masks, kind="stable")
        with np.errstate(divide="ignore"):
            log_probs = np.log(weights[order])
        return StateSpace(self.n_items, masks[order], log_probs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParticlePosterior(n_items={self.n_items}, "
            f"particles={self.num_particles}, ess={self._ess():.1f})"
        )
