"""Distributed test selection (operation class R2).

Selection is a broadcast-and-reduce: the driver broadcasts the candidate
pool table, every partition contracts its blocks against all candidates
at once (one NumPy matrix-vector product per block), and a tree
aggregation returns one number per candidate.  The arg-min happens at the
driver with the identical tie-breaking as the serial rule, so distributed
and serial screens choose the *same pools* given the same posterior —
the property the integration tests pin down.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.halving.bha import halving_objective
from repro.halving.lookahead import batch_balance_objective
from repro.lattice.partition import LatticeBlock
from repro.obs.tracer import PHASE_SELECTION, traced
from repro.sbgt.distributed_lattice import DistributedLattice
from repro.util.bits import popcount64

__all__ = [
    "down_set_masses_distributed",
    "select_halving_pool_distributed",
    "select_lookahead_pools_distributed",
    "select_infogain_pool_distributed",
]


def down_set_masses_distributed(
    lattice: DistributedLattice, pool_masks: np.ndarray
) -> np.ndarray:
    """Down-set mass of each candidate pool (already normalised)."""
    return lattice.down_set_masses(pool_masks)


@traced(PHASE_SELECTION, "select_halving")
def select_halving_pool_distributed(
    lattice: DistributedLattice, pool_masks: np.ndarray
) -> Tuple[int, float, float]:
    """Distributed Bayesian Halving Algorithm.

    Returns ``(pool_mask, down_set_mass, objective_gap)`` with the same
    deterministic (gap, pool size, mask) tie-breaking as the serial
    :func:`repro.halving.bha.select_halving_pool`.
    """
    pools = np.asarray(pool_masks, dtype=np.uint64)
    if pools.size == 0:
        raise ValueError("no candidate pools supplied")
    masses = lattice.down_set_masses(pools)
    gaps = halving_objective(masses)
    sizes = popcount64(pools)
    order = np.lexsort((pools, sizes, gaps))
    best = int(order[0])
    return int(pools[best]), float(masses[best]), float(gaps[best])


def _block_refined_cell_masses(
    block: LatticeBlock,
    chosen: Tuple[int, ...],
    candidates: np.ndarray,
    n_cells: int,
    log_offset: float = 0.0,
) -> np.ndarray:
    """Per-candidate refined-cell masses for one block.

    Returns an (n_candidates, n_cells) array: row ``c`` holds the linear
    mass of every cell of the partition induced by ``chosen + [cand_c]``.
    The chosen-pool cell index is recomputed per block (cheap: the batch
    is at most a handful of pools) so no per-state state needs shuffling.
    ``log_offset`` is the lattice's deferred-normalisation scalar.
    """
    if block.size == 0:
        return np.zeros((candidates.size, n_cells))
    p = np.exp(block.log_probs - log_offset) if log_offset else np.exp(block.log_probs)
    cell_idx = np.zeros(block.size, dtype=np.int64)
    for j, pool in enumerate(chosen):
        dirty = (block.masks & np.uint64(pool)) != np.uint64(0)
        cell_idx |= dirty.astype(np.int64) << j
    out = np.empty((candidates.size, n_cells))
    shift = len(chosen)
    for c, cand in enumerate(candidates):
        dirty = (block.masks & cand) != np.uint64(0)
        refined = cell_idx | (dirty.astype(np.int64) << shift)
        out[c] = np.bincount(refined, weights=p, minlength=n_cells)
    return out


def _block_count_hists(
    block: LatticeBlock, candidates: np.ndarray, max_size: int, log_offset: float = 0.0
) -> np.ndarray:
    """Per-candidate histograms of positives-in-pool for one block.

    Row ``c`` holds the linear mass of states placing ``k`` positives in
    candidate pool ``c`` (k = 0..max_size; columns beyond a pool's size
    stay zero).  ``log_offset`` is the lattice's deferred-normalisation
    scalar.
    """
    out = np.zeros((candidates.size, max_size + 1))
    if block.size == 0:
        return out
    p = np.exp(block.log_probs - log_offset) if log_offset else np.exp(block.log_probs)
    from repro.util.bits import intersect_count

    for c, cand in enumerate(candidates):
        counts = intersect_count(block.masks, int(cand))
        out[c, : counts.max() + 1] = np.bincount(counts, weights=p)
    return out


def _binary_entropy(p: np.ndarray) -> np.ndarray:
    p = np.clip(p, 1e-12, 1 - 1e-12)
    return -(p * np.log(p) + (1 - p) * np.log1p(-p))


@traced(PHASE_SELECTION, "select_infogain")
def select_infogain_pool_distributed(
    lattice: DistributedLattice, candidate_masks: np.ndarray, model
) -> Tuple[int, float]:
    """Distributed mutual-information pool selection (binary models).

    One aggregation computes every candidate's positives-in-pool
    distribution; the driver finishes with the closed-form binary mutual
    information, matching
    :class:`repro.halving.policy.InformationGainPolicy` choice for
    choice.
    """
    if not getattr(model, "binary", False):
        raise ValueError("information-gain selection requires a binary response model")
    candidates = np.asarray(candidate_masks, dtype=np.uint64)
    if candidates.size == 0:
        raise ValueError("no candidate pools supplied")
    sizes = popcount64(candidates)
    max_size = int(sizes.max())
    cand_bc = lattice.ctx.broadcast(candidates)
    off = lattice.log_offset
    hists = lattice.rdd.tree_aggregate(
        np.zeros((candidates.size, max_size + 1)),
        lambda acc, b: acc + _block_count_hists(b, cand_bc.value, max_size, off),
        lambda a, b: a + b,
    )
    best_pool, best_info = None, -np.inf
    order = np.lexsort((candidates, sizes))  # deterministic scan, small first
    for c_i in order:
        pool_size = int(sizes[c_i])
        pk = hists[c_i, : pool_size + 1]
        p_pos_given_k = model.positive_prob_by_count(pool_size)
        p_pos = float(pk @ p_pos_given_k)
        info = float(
            _binary_entropy(np.array([p_pos]))[0] - pk @ _binary_entropy(p_pos_given_k)
        )
        if info > best_info + 1e-15:
            best_pool, best_info = int(candidates[c_i]), info
    assert best_pool is not None
    return best_pool, float(best_info)


@traced(PHASE_SELECTION, "select_lookahead")
def select_lookahead_pools_distributed(
    lattice: DistributedLattice, candidate_masks: np.ndarray, s: int
) -> Tuple[List[int], float]:
    """Distributed greedy s-pool look-ahead batch selection.

    One aggregation per greedy step: every step broadcasts the pools
    chosen so far plus the candidate table and reduces the per-candidate
    refined-cell masses; the driver scores the balance objective and
    appends the winner (same deterministic scan order as the serial
    :func:`repro.halving.lookahead.select_lookahead_pools`).
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    candidates = np.asarray(candidate_masks, dtype=np.uint64)
    if candidates.size == 0:
        raise ValueError("no candidate pools supplied")
    sizes = popcount64(candidates)
    scan_order = np.lexsort((candidates, sizes))

    chosen: List[int] = []
    best_obj = np.inf
    for j in range(min(s, candidates.size)):
        n_cells = 1 << (j + 1)
        chosen_t = tuple(chosen)
        cand_bc = lattice.ctx.broadcast(candidates)
        off = lattice.log_offset

        masses = lattice.rdd.tree_aggregate(
            np.zeros((candidates.size, n_cells)),
            # Defaults pin this iteration's values (B023: the loop rebinds
            # these names before the next aggregation ships the closure).
            lambda acc, b, chosen_t=chosen_t, bc=cand_bc, k=n_cells, off=off: acc
            + _block_refined_cell_masses(b, chosen_t, bc.value, k, off),
            lambda a, b: a + b,
        )
        best = None
        for c_i in scan_order:
            pool = int(candidates[c_i])
            if pool in chosen:
                continue
            obj = batch_balance_objective(masses[c_i])
            if best is None or obj < best[0] - 1e-15:
                best = (obj, pool)
        if best is None:
            break
        best_obj, pool = best
        chosen.append(pool)
    return chosen, float(best_obj)
