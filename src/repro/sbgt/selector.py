"""Distributed test selection (operation class R2).

Selection consumes *selection statistics* from a
:class:`~repro.sbgt.backend.PosteriorBackend` — down-set masses,
positives-in-pool histograms, refined-cell masses — and finishes the
arg-min at the driver with the identical tie-breaking as the serial rule,
so distributed and serial screens choose the *same pools* given the same
posterior — the property the integration tests pin down.

These functions are representation-agnostic: the dense lattice computes
the statistics with broadcast-and-tree-aggregate passes, the sparse and
particle backends with driver-local NumPy; nothing here knows which.
Internals like the dense lattice's deferred-normalisation ``log_offset``
stay behind the protocol.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.halving.bha import halving_objective
from repro.halving.lookahead import batch_balance_objective
from repro.obs.tracer import PHASE_SELECTION, traced
from repro.sbgt.backend import PosteriorBackend
from repro.util.bits import popcount_any

__all__ = [
    "down_set_masses_distributed",
    "select_halving_pool_distributed",
    "select_lookahead_pools_distributed",
    "select_infogain_pool_distributed",
]

def _tie_break_order(*keys: np.ndarray) -> np.ndarray:
    """Stable ordering by the given keys, most significant *last*.

    ``np.lexsort`` semantics, but tolerant of object-dtype key arrays
    (arbitrary-precision pool masks from >64-individual cohorts, which
    lexsort rejects).
    """
    try:
        return np.lexsort(keys)
    except TypeError:
        sig = list(reversed(keys))
        idx = sorted(range(len(keys[0])), key=lambda i: tuple(k[i] for k in sig))
        return np.asarray(idx, dtype=np.intp)


def down_set_masses_distributed(
    posterior: PosteriorBackend, pool_masks: np.ndarray
) -> np.ndarray:
    """Down-set mass of each candidate pool (already normalised)."""
    return posterior.down_set_masses(pool_masks)


@traced(PHASE_SELECTION, "select_halving")
def select_halving_pool_distributed(
    posterior: PosteriorBackend, pool_masks: np.ndarray
) -> Tuple[int, float, float]:
    """Bayesian Halving Algorithm over a posterior backend.

    Returns ``(pool_mask, down_set_mass, objective_gap)`` with the same
    deterministic (gap, pool size, mask) tie-breaking as the serial
    :func:`repro.halving.bha.select_halving_pool`.
    """
    pools = np.asarray(pool_masks)
    if pools.size == 0:
        raise ValueError("no candidate pools supplied")
    masses = posterior.down_set_masses(pools)
    gaps = halving_objective(masses)
    sizes = popcount_any(pools)
    order = _tie_break_order(pools, sizes, gaps)
    best = int(order[0])
    return int(pools[best]), float(masses[best]), float(gaps[best])


def _binary_entropy(p: np.ndarray) -> np.ndarray:
    p = np.clip(p, 1e-12, 1 - 1e-12)
    return -(p * np.log(p) + (1 - p) * np.log1p(-p))


@traced(PHASE_SELECTION, "select_infogain")
def select_infogain_pool_distributed(
    posterior: PosteriorBackend, candidate_masks: np.ndarray, model
) -> Tuple[int, float]:
    """Mutual-information pool selection (binary models).

    One :meth:`~repro.sbgt.backend.PosteriorBackend.pool_count_hists`
    call yields every candidate's positives-in-pool distribution; the
    driver finishes with the closed-form binary mutual information,
    matching :class:`repro.halving.policy.InformationGainPolicy` choice
    for choice.
    """
    if not getattr(model, "binary", False):
        raise ValueError("information-gain selection requires a binary response model")
    candidates = np.asarray(candidate_masks)
    if candidates.size == 0:
        raise ValueError("no candidate pools supplied")
    sizes = popcount_any(candidates)
    hists = posterior.pool_count_hists(candidates)
    best_pool, best_info = None, -np.inf
    order = _tie_break_order(candidates, sizes)  # deterministic scan, small first
    for c_i in order:
        pool_size = int(sizes[c_i])
        pk = hists[c_i, : pool_size + 1]
        p_pos_given_k = model.positive_prob_by_count(pool_size)
        p_pos = float(pk @ p_pos_given_k)
        info = float(
            _binary_entropy(np.array([p_pos]))[0] - pk @ _binary_entropy(p_pos_given_k)
        )
        if info > best_info + 1e-15:
            best_pool, best_info = int(candidates[c_i]), info
    assert best_pool is not None
    return best_pool, float(best_info)


@traced(PHASE_SELECTION, "select_lookahead")
def select_lookahead_pools_distributed(
    posterior: PosteriorBackend, candidate_masks: np.ndarray, s: int
) -> Tuple[List[int], float]:
    """Greedy s-pool look-ahead batch selection over a posterior backend.

    One :meth:`~repro.sbgt.backend.PosteriorBackend.refined_cell_masses`
    call per greedy step; the driver scores the balance objective and
    appends the winner (same deterministic scan order as the serial
    :func:`repro.halving.lookahead.select_lookahead_pools`).
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    candidates = np.asarray(candidate_masks)
    if candidates.size == 0:
        raise ValueError("no candidate pools supplied")
    sizes = popcount_any(candidates)
    scan_order = _tie_break_order(candidates, sizes)

    chosen: List[int] = []
    best_obj = np.inf
    for j in range(min(s, candidates.size)):
        n_cells = 1 << (j + 1)
        masses = posterior.refined_cell_masses(chosen, candidates, n_cells)
        best = None
        for c_i in scan_order:
            pool = int(candidates[c_i])
            if pool in chosen:
                continue
            obj = batch_balance_objective(masses[c_i])
            if best is None or obj < best[0] - 1e-15:
                best = (obj, pool)
        if best is None:
            break
        best_obj, pool = best
        chosen.append(pool)
    return chosen, float(best_obj)
