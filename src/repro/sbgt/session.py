"""The SBGT session: a full sequential screen on the distributed lattice.

Runs the same stage protocol as the serial driver
(:func:`repro.workflows.classify.run_screen`) — classify, select, assay,
update — but every lattice touch goes through the engine.  The policy
objects are the *same* classes the serial driver takes; halving,
look-ahead and information-gain policies are transparently dispatched to
their distributed selector implementations, while lattice-free baselines
(individual, Dorfman) run their own logic against the session's
marginals.

With ``SBGTConfig(compact_classified=True)`` the session additionally
performs *lattice contraction*: each settled diagnosis is conditioned on
and its bit projected out, so the state space halves per settled
individual.  Externally everything stays in original cohort indices —
the session owns the live/settled bookkeeping and translates pool masks
both ways.

Produces the same :class:`~repro.workflows.classify.ScreenResult` shape,
so accuracy/efficiency tables can mix serial and distributed rows.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.bayes.dilution import ResponseModel
from repro.bayes.evidence import EvidenceLog, TestRecord
from repro.bayes.indexmap import CohortIndexMap
from repro.bayes.posterior import Classification, ClassificationReport
from repro.bayes.priors import PriorSpec
from repro.engine.context import Context
from repro.halving.policy import (
    BHAPolicy,
    InformationGainPolicy,
    LookaheadPolicy,
    SelectionPolicy,
)
from repro.sbgt.analyzer import DistributedAnalyzer
from repro.sbgt.config import SBGTConfig
from repro.sbgt.distributed_lattice import DistributedLattice, PruneStats
from repro.sbgt.selector import (
    select_halving_pool_distributed,
    select_infogain_pool_distributed,
    select_lookahead_pools_distributed,
)
from repro.simulate.population import Cohort, make_cohort
from repro.simulate.testing import TestLab
from repro.util.bits import as_mask_array
from repro.util.rng import RngLike, as_rng
from repro.workflows.classify import ScreenResult
from repro.workflows.options import ScreenOptions, resolve_screen_options

__all__ = ["SBGTSession"]


class SBGTSession:
    """Distributed Bayesian group-testing session for one cohort."""

    def __init__(
        self,
        ctx: Optional[Context],
        prior: PriorSpec,
        model: ResponseModel,
        config: Optional[SBGTConfig] = None,
    ) -> None:
        self.ctx = ctx
        self.prior = prior
        self.model = model
        self.config = config or SBGTConfig()
        if self.config.backend == "dense" and ctx is None:
            raise ValueError("the dense backend needs an engine Context (ctx)")
        #: Log prior mass outside a rank-restricted support (−inf = dense).
        self.log_discarded_prior = -np.inf
        from repro.workflows.payloads import make_posterior

        self.lattice = make_posterior(
            self.config.backend,
            prior=prior,
            ctx=ctx,
            num_blocks=self.config.num_blocks,
            max_positives=self.config.max_positives,
            sparse_floor=self.config.sparse_floor,
            max_states=self.config.max_states,
            num_particles=self.config.num_particles,
            ess_threshold=self.config.ess_threshold,
            seed=self.config.backend_seed,
        )
        self.log_discarded_prior = getattr(self.lattice, "log_discarded_prior", -np.inf)
        self.analyzer = DistributedAnalyzer(self.lattice)
        self.log = EvidenceLog()
        self._stage = 0
        self._marginals_cache: Optional[np.ndarray] = None
        # Lattice-contraction bookkeeping (original <-> compact indices).
        self._index = CohortIndexMap(prior.n_items)

    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        return self.prior.n_items

    @property
    def num_tests(self) -> int:
        return self.log.num_tests

    @property
    def num_live(self) -> int:
        """Individuals still represented in the lattice."""
        return self._index.num_live

    def begin_stage(self) -> int:
        self._stage += 1
        return self._stage

    def _invalidate(self) -> None:
        self._marginals_cache = None

    # index translation (original cohort <-> compact lattice)
    def _to_compact_mask(self, pool_mask: int) -> int:
        return self._index.to_compact_mask(pool_mask)

    def _to_original_mask(self, compact_mask: int) -> int:
        return self._index.to_original_mask(compact_mask)

    # ------------------------------------------------------------------
    # belief-state API (mirrors repro.bayes.Posterior)
    # ------------------------------------------------------------------
    def marginals(self) -> np.ndarray:
        """Posterior infection probability per *original* individual."""
        if self._marginals_cache is None:
            compact = self.analyzer.marginals()
            full = np.empty(self.n_items, dtype=np.float64)
            for orig, positive in self._index.settled.items():
                full[orig] = 1.0 if positive else 0.0
            for pos, orig in enumerate(self._index.live):
                full[orig] = compact[pos]
            self._marginals_cache = full
        return self._marginals_cache

    def entropy(self) -> float:
        """Posterior entropy (settled individuals contribute zero)."""
        return self.analyzer.entropy()

    def map_state(self) -> int:
        """Most probable infection pattern, in original indices."""
        compact = self.analyzer.map_state()
        return self._to_original_mask(compact) | self._index.settled_positive_mask()

    def classify(
        self,
        positive_threshold: Optional[float] = None,
        negative_threshold: Optional[float] = None,
    ) -> ClassificationReport:
        pos = self.config.positive_threshold if positive_threshold is None else positive_threshold
        neg = self.config.negative_threshold if negative_threshold is None else negative_threshold
        marg = self.marginals()
        statuses = tuple(
            Classification.POSITIVE
            if m >= pos
            else Classification.NEGATIVE
            if m <= neg
            else Classification.UNDETERMINED
            for m in marg
        )
        return ClassificationReport(marginals=marg, statuses=statuses)

    def update(self, pool: Any, outcome: Any) -> TestRecord:
        """Condition the distributed lattice on one pooled outcome.

        *pool* is given in original cohort indices (mask or index
        iterable) and must not contain settled individuals.
        """
        if isinstance(pool, (int, np.integer)):
            pool_mask = int(pool)
        else:
            pool_mask = 0
            for i in pool:
                pool_mask |= 1 << int(i)
        if pool_mask <= 0:
            raise ValueError("pool must contain at least one individual")
        pool_size = bin(pool_mask).count("1")
        compact_pool = self._to_compact_mask(pool_mask)
        log_lik = self.model.log_likelihood_by_count(outcome, pool_size)

        ent_before = self.entropy() if self.config.track_entropy else None
        log_pred = self.lattice.update(compact_pool, log_lik)
        self._invalidate()
        ent_after = self.entropy() if self.config.track_entropy else None

        record = TestRecord(
            stage=self._stage,
            pool_mask=pool_mask,
            pool_size=pool_size,
            outcome=outcome,
            log_predictive=log_pred,
            entropy_before=ent_before,
            entropy_after=ent_after,
        )
        self.log.append(record)
        return record

    def prune(self) -> Optional[PruneStats]:
        """Apply the configured pruning + rebalance policy."""
        if self.config.prune_epsilon <= 0.0:
            return None
        if self._stage % self.config.prune_interval != 0:
            return None
        stats = self.lattice.prune(self.config.prune_epsilon)
        if self.lattice.num_states() <= self.config.rebalance_states:
            self.lattice.rebalance()
        self._invalidate()
        return stats

    # ------------------------------------------------------------------
    # lattice contraction
    # ------------------------------------------------------------------
    def settle(self, individual: int, as_positive: bool) -> None:
        """Commit a diagnosis and project the individual out.

        Irreversible: the lattice is conditioned on the committed value.
        The final live individual is never projected (a lattice needs at
        least one bit); their diagnosis is still recorded.
        """
        project = self._index.num_live > 1
        pos = self._index.settle(individual, as_positive)  # validates
        if project:
            self.lattice.project_out_bit(pos, as_positive)
        self._invalidate()

    def _compact_settled(self, report: ClassificationReport) -> None:
        if not self.config.compact_classified:
            return
        for i, status in enumerate(report.statuses):
            if status is Classification.UNDETERMINED or self._index.is_settled(i):
                continue
            if self._index.num_live == 0:
                break
            self.settle(i, status is Classification.POSITIVE)

    # ------------------------------------------------------------------
    # policy dispatch
    # ------------------------------------------------------------------
    def select_pools(self, policy: SelectionPolicy, eligible_mask: int) -> List[int]:
        """One stage of pool proposals (original indices), distributed
        where the policy's math touches the lattice."""
        if isinstance(policy, LookaheadPolicy):
            cands = policy.candidates.generate(self.marginals(), eligible_mask)
            compact = as_mask_array([self._to_compact_mask(int(c)) for c in cands])
            pools, _ = select_lookahead_pools_distributed(self.lattice, compact, policy.depth)
            return [self._to_original_mask(p) for p in pools]
        if isinstance(policy, BHAPolicy):
            cands = policy.candidates.generate(self.marginals(), eligible_mask)
            compact = as_mask_array([self._to_compact_mask(int(c)) for c in cands])
            pool, _, _ = select_halving_pool_distributed(self.lattice, compact)
            return [self._to_original_mask(pool)]
        if isinstance(policy, InformationGainPolicy):
            cands = policy.candidates.generate(self.marginals(), eligible_mask)
            compact = as_mask_array([self._to_compact_mask(int(c)) for c in cands])
            pool, _ = select_infogain_pool_distributed(self.lattice, compact, self.model)
            return [self._to_original_mask(pool)]
        # Lattice-free baselines (individual, Dorfman, custom): they see
        # the session itself, which quacks enough (marginals()).
        return policy.select(self, eligible_mask)

    # ------------------------------------------------------------------
    # full screen
    # ------------------------------------------------------------------
    def run_screen(
        self,
        policy: SelectionPolicy,
        rng: RngLike = None,
        cohort: Optional[Cohort] = None,
        stopping_rule=None,
        options: Optional[ScreenOptions] = None,
        **legacy,
    ) -> ScreenResult:
        """Run the classify/select/assay/update loop to completion.

        ``options`` (a :class:`~repro.workflows.options.ScreenOptions`)
        overrides the corresponding :class:`SBGTConfig` fields for this
        screen only; the old loose keywords remain deprecated aliases.
        ``stopping_rule`` (see
        :class:`~repro.halving.stopping.LossBasedStopping`) additionally
        ends the screen once the residual misclassification risk is
        cheaper than testing further, issuing loss-optimal calls.
        """
        from repro.workflows.classify import _loss_final_report

        defaults = ScreenOptions(
            positive_threshold=self.config.positive_threshold,
            negative_threshold=self.config.negative_threshold,
            max_stages=self.config.max_stages,
            prune_epsilon=self.config.prune_epsilon,
            track_entropy=self.config.track_entropy,
        )
        opts = resolve_screen_options(options, legacy, "SBGTSession.run_screen", defaults)
        saved_config = self.config
        if opts != defaults:
            self.config = self.config.with_(
                positive_threshold=opts.positive_threshold,
                negative_threshold=opts.negative_threshold,
                max_stages=opts.max_stages,
                prune_epsilon=opts.prune_epsilon,
                track_entropy=opts.track_entropy,
            )
        try:
            return self._run_screen_loop(policy, rng, cohort, stopping_rule, _loss_final_report)
        finally:
            self.config = saved_config

    def _run_screen_loop(
        self, policy, rng, cohort, stopping_rule, _loss_final_report
    ) -> ScreenResult:
        from repro.engine.tracing import ensure_trace
        from repro.sbgt.stepper import ScreenStepper

        gen = as_rng(rng)
        if cohort is None:
            cohort = make_cohort(self.prior, gen)
        lab = TestLab(self.model, cohort.truth_mask, gen)
        # Correlate the whole screen under one trace_id (inheriting the
        # caller's — e.g. a serve request — when one is already open).
        with ensure_trace(name="run_screen"):
            stepper = ScreenStepper(self, policy, stopping_rule=stopping_rule)
            while not stepper.done:
                pools = stepper.next_pools()
                stepper.submit_outcomes([lab.run(pool) for pool in pools])
        return stepper.result(cohort)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Checkpoint the session (lattice + evidence trail) to ``.npz``.

        The distributed lattice is collected to the driver for the
        write; contraction must not have started (same restriction as
        the serial checkpoint).  Restore with :meth:`load`.
        """
        from repro.bayes.posterior import Posterior
        from repro.lattice.serialize import save_posterior

        if self._index.any_settled:
            raise ValueError("checkpointing a contracted session is not supported")
        snapshot = Posterior(self.lattice.collect(), self.model,
                             track_entropy=self.config.track_entropy)
        snapshot._stage = self._stage
        snapshot.log = self.log
        save_posterior(snapshot, path)

    @classmethod
    def load(
        cls,
        ctx: Context,
        path,
        prior: PriorSpec,
        model: ResponseModel,
        config: Optional[SBGTConfig] = None,
    ) -> "SBGTSession":
        """Restore a checkpointed session onto a (possibly new) context.

        *prior* and *model* are configuration and must match what the
        checkpointed screen was using; the belief state itself comes
        from the file.
        """
        from repro.lattice.serialize import load_posterior

        if config is not None and config.backend != "dense":
            raise ValueError("checkpoint restore is only supported for the dense backend")
        snapshot = load_posterior(path, model)
        if snapshot.space.n_items != prior.n_items:
            raise ValueError("checkpoint cohort size does not match the prior")
        session = cls.__new__(cls)
        session.ctx = ctx
        session.prior = prior
        session.model = model
        session.config = config or SBGTConfig()
        session.log_discarded_prior = -np.inf
        session.lattice = DistributedLattice.from_state_space(
            ctx, snapshot.space, session.config.num_blocks
        )
        session.analyzer = DistributedAnalyzer(session.lattice)
        session.log = snapshot.log
        session._stage = snapshot._stage
        session._marginals_cache = None
        session._index = CohortIndexMap(prior.n_items)
        return session

    def close(self) -> None:
        """Release cached lattice blocks (the context stays usable)."""
        self.lattice.unpersist()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SBGTSession(n_items={self.n_items}, live={self.num_live}, "
            f"blocks={self.lattice.num_blocks}, tests={self.num_tests})"
        )
