"""Sparse posterior backend: explicit above-floor states, no 2^N wall.

The dense lattice carries every state of the Boolean lattice; sequential
screens concentrate mass onto a vanishing fraction of them within a few
stages.  :class:`SparsePosterior` generalises :func:`repro.lattice.prune.
prune_below` into the *representation*: only states whose posterior
probability clears a floor stay explicit, as rows of a boolean
state-matrix with a log-weight each, so memory tracks surviving mass
instead of 2^N.  With ``floor=0`` and a support budget covering the full
lattice it is exact — the small-N cross-check the tests pin down.

States are rows of a ``(S, n_items)`` boolean matrix rather than uint64
masks, so cohorts far beyond 64 individuals work; masks only appear at
the :class:`~repro.sbgt.backend.PosteriorBackend` boundary, as Python
arbitrary-precision ints.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import logsumexp

from repro.bayes.priors import PriorSpec
from repro.lattice.prune import PruneStats
from repro.lattice.states import StateSpace
from repro.obs.tracer import PHASE_ANALYSIS, PHASE_LATTICE, PHASE_SELECTION, traced
from repro.sbgt.backend import PosteriorBackend
from repro.util.bits import indices_from_mask
from repro.util.numerics import log1mexp

__all__ = ["SparsePosterior"]

#: Default cap on explicit states (memory bound, not a correctness knob).
DEFAULT_MAX_STATES = 1 << 17


def _pool_columns(pool_mask: int, n_items: int) -> np.ndarray:
    cols = np.asarray(indices_from_mask(int(pool_mask)), dtype=np.intp)
    if cols.size and cols[-1] >= n_items:
        raise ValueError(f"pool mask selects bit {int(cols[-1])} outside cohort")
    return cols


# ----------------------------------------------------------------------
# state-matrix selection kernels — shared with the particle backend
# ----------------------------------------------------------------------
def matrix_down_set_masses(
    states: np.ndarray, p: np.ndarray, pool_masks: np.ndarray, n_items: int
) -> np.ndarray:
    """P(no positives in pool) per pool, over a boolean state matrix."""
    pools = np.asarray(pool_masks).ravel()
    out = np.empty(pools.size, dtype=np.float64)
    for c, pool in enumerate(pools):
        cols = _pool_columns(int(pool), n_items)
        out[c] = p[~states[:, cols].any(axis=1)].sum()
    return out


def matrix_count_distribution(
    states: np.ndarray, p: np.ndarray, pool_mask: int, n_items: int
) -> np.ndarray:
    """P(k positives in pool) for k = 0..|pool| over a state matrix."""
    cols = _pool_columns(pool_mask, n_items)
    counts = states[:, cols].sum(axis=1)
    return np.bincount(counts, weights=p, minlength=cols.size + 1)


def matrix_pool_count_hists(
    states: np.ndarray, p: np.ndarray, candidate_masks: np.ndarray, n_items: int
) -> np.ndarray:
    """Positives-in-pool histograms for a whole candidate table."""
    candidates = np.asarray(candidate_masks).ravel()
    col_sets = [_pool_columns(int(c), n_items) for c in candidates]
    max_size = max((cols.size for cols in col_sets), default=0)
    out = np.zeros((candidates.size, max_size + 1))
    for c, cols in enumerate(col_sets):
        counts = states[:, cols].sum(axis=1)
        out[c, : counts.max(initial=0) + 1] = np.bincount(counts, weights=p)
    return out


def matrix_refined_cell_masses(
    states: np.ndarray,
    p: np.ndarray,
    chosen: Sequence[int],
    candidate_masks: np.ndarray,
    n_cells: int,
    n_items: int,
) -> np.ndarray:
    """Refined-partition cell masses for greedy look-ahead selection."""
    candidates = np.asarray(candidate_masks).ravel()
    cell_idx = np.zeros(states.shape[0], dtype=np.int64)
    for j, pool in enumerate(chosen):
        cols = _pool_columns(int(pool), n_items)
        cell_idx |= states[:, cols].any(axis=1).astype(np.int64) << j
    out = np.empty((candidates.size, n_cells))
    shift = len(tuple(chosen))
    for c, cand in enumerate(candidates):
        cols = _pool_columns(int(cand), n_items)
        dirty = states[:, cols].any(axis=1)
        refined = cell_idx | (dirty.astype(np.int64) << shift)
        out[c] = np.bincount(refined, weights=p, minlength=n_cells)
    return out


def matrix_row_mask(row: np.ndarray) -> int:
    """Boolean state row -> arbitrary-precision Python-int bit mask."""
    mask = 0
    for i in np.flatnonzero(row):
        mask |= 1 << int(i)
    return mask


class SparsePosterior(PosteriorBackend):
    """Driver-resident sparse belief state over explicit states.

    Parameters
    ----------
    states:
        ``(S, n_items)`` boolean matrix, one candidate infection pattern
        per row (rows distinct).
    log_weights:
        Per-state log-probability, normalised (``logsumexp == 0``).
    floor:
        After each update, states whose posterior probability falls
        strictly below this are dropped (and the remainder renormalised).
        ``0.0`` keeps everything — exact inference on the given support.
    """

    def __init__(
        self,
        states: np.ndarray,
        log_weights: np.ndarray,
        floor: float = 0.0,
        log_discarded_prior: float = -np.inf,
    ) -> None:
        self.states = np.ascontiguousarray(states, dtype=bool)
        self.log_weights = np.ascontiguousarray(log_weights, dtype=np.float64)
        if self.states.ndim != 2 or self.states.shape[0] != self.log_weights.size:
            raise ValueError("states must be (S, n_items) with one log-weight per row")
        if not 0.0 <= floor < 1.0:
            raise ValueError("floor must be in [0, 1)")
        self.n_items = int(self.states.shape[1])
        self.floor = float(floor)
        #: Log prior mass outside the explicit support at construction.
        self.log_discarded_prior = float(log_discarded_prior)
        self._normalize()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    @traced(PHASE_LATTICE, "sparse_from_prior")
    def from_prior(
        cls,
        prior: PriorSpec,
        floor: float = 0.0,
        max_states: int = DEFAULT_MAX_STATES,
        max_positives: Optional[int] = None,
    ) -> "SparsePosterior":
        """Seed the support with the highest-prior-mass rank levels.

        The product prior concentrates on low-rank states (few
        positives), so the support is the union of rank levels
        ``0..k`` for the largest ``k`` whose cumulative state count fits
        ``max_states`` (clipped to ``max_positives`` when given).  The
        log prior mass left outside is recorded as
        ``log_discarded_prior``; when the whole lattice fits, the
        representation is the exact dense prior.
        """
        if max_states < 1:
            raise ValueError("max_states must be positive")
        n = prior.n_items
        k_cap = n if max_positives is None else min(int(max_positives), n)
        total = 0
        k = -1
        for j in range(k_cap + 1):
            total += comb(n, j)
            if total > max_states:
                break
            k = j
        if k < 0:
            raise ValueError(
                f"max_states={max_states} cannot hold even the rank-0/1 levels "
                f"of a {n}-individual cohort"
            )
        rows: List[np.ndarray] = [np.zeros((1, n), dtype=bool)]
        for size in range(1, k + 1):
            level = np.zeros((comb(n, size), n), dtype=bool)
            for r, combo in enumerate(combinations(range(n), size)):
                level[r, list(combo)] = True
            rows.append(level)
        states = np.concatenate(rows, axis=0)
        # Canonicalise to ascending mask order (most-significant column
        # as the primary lexsort key == integer mask order).  Keeping
        # the same state order as the dense representations makes the
        # floating-point reductions bit-compatible, so exhaustive-support
        # screens replay the dense screens move for move.
        states = states[np.lexsort(tuple(states[:, i] for i in range(n)))]

        risks = np.clip(np.asarray(prior.risks, dtype=np.float64), 1e-12, 1 - 1e-12)
        logit = np.log(risks) - np.log1p(-risks)
        base = float(np.log1p(-risks).sum())
        log_w = states.astype(np.float64) @ logit + base
        log_kept = float(logsumexp(log_w))
        # The enumeration is exact, so the mass outside the support is
        # exactly 1 - exp(log_kept).
        log_disc = log1mexp(min(log_kept, -1e-300)) if log_kept < 0 else -np.inf
        return cls(states, log_w - log_kept, floor=floor, log_discarded_prior=log_disc)

    @classmethod
    def from_state_space(cls, space: StateSpace, floor: float = 0.0) -> "SparsePosterior":
        """Adopt an existing (≤64-individual) state space."""
        n = space.n_items
        states = np.zeros((space.size, n), dtype=bool)
        for i in range(n):
            states[:, i] = (space.masks >> np.uint64(i)) & np.uint64(1) == np.uint64(1)
        return cls(states, space.log_probs, floor=floor)

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------
    def _probs(self) -> np.ndarray:
        return np.exp(self.log_weights)

    def _normalize(self) -> None:
        total = float(logsumexp(self.log_weights))
        if not np.isfinite(total):
            raise ValueError("posterior has zero total mass (contradictory evidence?)")
        self.log_weights -= total

    def _keep(self, keep: np.ndarray) -> None:
        self.states = self.states[keep]
        self.log_weights = self.log_weights[keep]

    def _apply_floor(self) -> None:
        if self.floor <= 0.0:
            return
        keep = self.log_weights >= np.log(self.floor)
        if not keep.any():
            keep[int(np.argmax(self.log_weights))] = True
        if not keep.all():
            self._keep(keep)
            self._normalize()

    # ------------------------------------------------------------------
    # lattice manipulation (R1)
    # ------------------------------------------------------------------
    @traced(PHASE_LATTICE, "sparse_update")
    def update(self, pool_mask: int, log_lik_by_count: np.ndarray) -> float:
        ll = np.asarray(log_lik_by_count, dtype=np.float64)
        cols = _pool_columns(pool_mask, self.n_items)
        counts = self.states[:, cols].sum(axis=1)
        new_lw = self.log_weights + ll[counts]
        log_pred = float(logsumexp(new_lw))  # prior weights are normalised
        if not np.isfinite(log_pred):
            raise ValueError("observed outcome has zero probability under the model")
        self.log_weights = new_lw - log_pred
        self._apply_floor()
        return log_pred

    @traced(PHASE_LATTICE, "sparse_condition")
    def condition(self, positive_mask: int = 0, negative_mask: int = 0) -> None:
        if int(positive_mask) & int(negative_mask):
            raise ValueError("an individual cannot be classified both ways")
        pos = _pool_columns(positive_mask, self.n_items)
        neg = _pool_columns(negative_mask, self.n_items)
        keep = np.ones(self.states.shape[0], dtype=bool)
        if pos.size:
            keep &= self.states[:, pos].all(axis=1)
        if neg.size:
            keep &= ~self.states[:, neg].any(axis=1)
        self._keep(keep)
        self._normalize()

    @traced(PHASE_LATTICE, "sparse_prune")
    def prune(self, epsilon: float) -> PruneStats:
        """Exact mass-ranked prune (the sparse twin of ``prune_by_mass``)."""
        if not 0.0 <= epsilon < 1.0:
            raise ValueError("epsilon must be in [0, 1)")
        before = self.num_states()
        if epsilon == 0.0:
            return PruneStats(before, 0, 0.0)
        p = self._probs()
        order = np.argsort(-p, kind="stable")
        cum = np.cumsum(p[order])
        cut = int(np.searchsorted(cum, 1.0 - epsilon, side="left"))
        cut = min(cut, p.size - 1)
        keep_idx = np.sort(order[: cut + 1])
        dropped_mass = float(max(0.0, 1.0 - p[keep_idx].sum()))
        keep = np.zeros(before, dtype=bool)
        keep[keep_idx] = True
        self._keep(keep)
        self._normalize()
        return PruneStats(int(keep_idx.size), before - int(keep_idx.size), dropped_mass)

    @traced(PHASE_LATTICE, "sparse_project_out_bit")
    def project_out_bit(self, bit: int, keep_positive: bool) -> None:
        if not 0 <= bit < self.n_items:
            raise ValueError(f"bit {bit} outside [0, {self.n_items})")
        if self.n_items == 1:
            raise ValueError("cannot project the last remaining individual out")
        col = self.states[:, bit]
        keep = col if keep_positive else ~col
        if not keep.any():
            raise ValueError("conditioning on the settled value leaves zero mass")
        # Rows agreeing on the dropped column stay pairwise distinct
        # after its removal, so no merge pass is needed.
        self._keep(keep)
        self.states = np.ascontiguousarray(np.delete(self.states, bit, axis=1))
        self.n_items -= 1
        self._normalize()

    # ------------------------------------------------------------------
    # test selection statistics (R2)
    # ------------------------------------------------------------------
    @traced(PHASE_SELECTION, "sparse_down_set_masses")
    def down_set_masses(self, pool_masks: np.ndarray) -> np.ndarray:
        return matrix_down_set_masses(self.states, self._probs(), pool_masks, self.n_items)

    @traced(PHASE_SELECTION, "sparse_count_distribution")
    def count_distribution(self, pool_mask: int) -> np.ndarray:
        return matrix_count_distribution(self.states, self._probs(), pool_mask, self.n_items)

    @traced(PHASE_SELECTION, "sparse_pool_count_hists")
    def pool_count_hists(self, candidate_masks: np.ndarray) -> np.ndarray:
        return matrix_pool_count_hists(self.states, self._probs(), candidate_masks, self.n_items)

    @traced(PHASE_SELECTION, "sparse_refined_cell_masses")
    def refined_cell_masses(
        self, chosen: Sequence[int], candidate_masks: np.ndarray, n_cells: int
    ) -> np.ndarray:
        return matrix_refined_cell_masses(
            self.states, self._probs(), chosen, candidate_masks, n_cells, self.n_items
        )

    # ------------------------------------------------------------------
    # statistical analysis (R3)
    # ------------------------------------------------------------------
    @traced(PHASE_ANALYSIS, "sparse_marginals")
    def marginals(self) -> np.ndarray:
        return self._probs() @ self.states.astype(np.float64)

    @traced(PHASE_ANALYSIS, "sparse_entropy")
    def entropy(self) -> float:
        p = self._probs()
        nz = p > 0.0
        return float(-np.sum(p[nz] * self.log_weights[nz]))

    @traced(PHASE_ANALYSIS, "sparse_top_states")
    def top_states(self, k: int) -> List[Tuple[int, float]]:
        if k <= 0 or self.states.shape[0] == 0:
            return []
        k = min(k, self.states.shape[0])
        idx = np.argpartition(-self.log_weights, k - 1)[:k]
        idx = idx[np.argsort(-self.log_weights[idx], kind="stable")]
        p = self._probs()
        return [(matrix_row_mask(self.states[i]), float(p[i])) for i in idx]

    def num_states(self) -> int:
        return int(self.states.shape[0])

    def collect(self) -> StateSpace:
        if self.n_items > 64:
            raise ValueError(
                "cannot collect a >64-individual sparse posterior into a "
                "uint64-masked StateSpace"
            )
        masks = np.zeros(self.states.shape[0], dtype=np.uint64)
        for i in range(self.n_items):
            masks |= self.states[:, i].astype(np.uint64) << np.uint64(i)
        order = np.argsort(masks, kind="stable")
        return StateSpace(self.n_items, masks[order], self.log_weights[order].copy())
