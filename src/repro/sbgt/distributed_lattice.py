"""The distributed lattice: an RDD of :class:`LatticeBlock` records.

Invariants maintained by every public method:

* blocks are **normalised up to a driver-held scalar**: stored log-probs
  jointly sum (in linear space) to ``exp(log_offset)``, so the true
  log-probability of a state is ``stored − log_offset``.  Block kernels
  take the offset as a parameter and fold the rescale into their
  existing exponentiation — calibrated statistics without a rescale
  pass;
* the RDD is **cached and already materialised** — callers never pay a
  rebuild of lineage twice;
* blocks are **immutable once cached** — update paths copy before
  mutating, exactly Spark's contract.

Deferred normalisation makes :meth:`DistributedLattice.update` a single
full-lattice pass: apply the likelihood while caching, tree-aggregate
the new stored mass (which materialises the cache), and fold the
normalisation into ``log_offset`` as an O(1) driver-side bookkeeping
step.  The mass delta *is* the predictive probability of the outcome, so
evidence tracking stays free.  The offset is absorbed back into the data
only at checkpoint/rebalance boundaries (and ``collect``), where a full
materialisation happens anyway.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bayes.priors import PriorSpec
from repro.engine.context import Context
from repro.engine.rdd import RDD
from repro.lattice.builder import enumerate_restricted_masks, product_prior_log
from repro.lattice.partition import (
    LatticeBlock,
    block_count_distribution_partial,
    block_count_hists_partial,
    block_down_set_partial,
    block_entropy_partial,
    block_filter_consistent,
    block_histogram_partial,
    block_log_mass,
    block_marginal_partial,
    block_project_out_bit,
    block_refined_cell_partial,
    block_top_states,
    block_update,
    merge_blocks,
    partition_state_space,
)
from repro.lattice.prune import PruneStats
from repro.lattice.states import StateSpace
from repro.obs.tracer import PHASE_ANALYSIS, PHASE_LATTICE, PHASE_SELECTION, traced
from repro.sbgt.backend import PosteriorBackend
from repro.util.bits import popcount64
from repro.util.numerics import log1mexp

__all__ = ["DistributedLattice", "PruneStats"]


def _log_add(a: float, b: float) -> float:
    return float(np.logaddexp(a, b))


class DistributedLattice(PosteriorBackend):
    """A normalised lattice model partitioned across the engine."""

    #: Updates between automatic lineage checkpoints.  Each Bayes update
    #: appends one map node to the lineage; without truncation a long
    #: screen would recompute ever-deeper chains on cache misses.
    #: Checkpointing collects and re-parallelizes the blocks — the engine
    #: analogue of ``RDD.checkpoint()`` — and absorbs the normalisation
    #: offset back into the stored log-probs while it is at it.
    checkpoint_interval: int = 16

    def __init__(self, ctx: Context, rdd: RDD, n_items: int) -> None:
        self.ctx = ctx
        self.rdd = rdd
        self.n_items = int(n_items)
        self._updates_since_checkpoint = 0
        # Deferred-normalisation scalar: true log-prob = stored − offset.
        self._log_offset = 0.0

    @property
    def log_offset(self) -> float:
        """Current deferred-normalisation scalar (0.0 right after a rebalance)."""
        return self._log_offset

    # ------------------------------------------------------------------
    # construction (operation class R1: lattice manipulation)
    # ------------------------------------------------------------------
    @classmethod
    @traced(PHASE_LATTICE, "from_prior")
    def from_prior(
        cls, ctx: Context, prior: PriorSpec, num_blocks: int = 0
    ) -> "DistributedLattice":
        """Build the dense product-prior lattice *in parallel*.

        Each task materialises one contiguous mask range and evaluates
        the prior on it; the driver never holds the full lattice.
        """
        n = prior.n_items
        if n > 30:
            raise ValueError("dense lattice limited to 30 individuals; use from_restricted_prior")
        size = 1 << n
        nb = num_blocks or ctx.default_parallelism
        nb = max(1, min(nb, size))
        bounds = [round(i * size / nb) for i in range(nb + 1)]
        ranges = [(bounds[i], bounds[i + 1]) for i in range(nb) if bounds[i] < bounds[i + 1]]
        risks_bc = ctx.broadcast(prior.risks)

        def build(rng_pair: Tuple[int, int]) -> LatticeBlock:
            lo, hi = rng_pair
            masks = np.arange(lo, hi, dtype=np.uint64)
            log_probs = product_prior_log(masks, risks_bc.value)
            return LatticeBlock(n, masks, log_probs)

        rdd = ctx.parallelize(ranges, len(ranges)).map(build).cache()
        lattice = cls(ctx, rdd, n)
        # The dense product prior is normalised analytically; the
        # renormalise absorbs float drift into the offset and its mass
        # aggregation materialises the cache.
        lattice._renormalize()
        return lattice

    @classmethod
    @traced(PHASE_LATTICE, "from_restricted_prior")
    def from_restricted_prior(
        cls,
        ctx: Context,
        prior: PriorSpec,
        max_positives: int,
        num_blocks: int = 0,
    ) -> Tuple["DistributedLattice", float]:
        """Rank-restricted lattice (cohorts beyond dense reach).

        Masks are enumerated at the driver (cheap relative to the prior
        evaluation), sliced, and weighted in parallel.  Returns the
        lattice and the log prior mass discarded by the restriction.
        """
        n = prior.n_items
        masks = enumerate_restricted_masks(n, max_positives)
        nb = num_blocks or ctx.default_parallelism
        nb = max(1, min(nb, masks.size))
        slices = np.array_split(masks, nb)
        risks_bc = ctx.broadcast(prior.risks)

        def build(chunk: np.ndarray) -> LatticeBlock:
            return LatticeBlock(n, chunk, product_prior_log(chunk, risks_bc.value))

        rdd = ctx.parallelize(slices, nb).map(build).cache()
        lattice = cls(ctx, rdd, n)
        log_kept = lattice._renormalize()
        log_discarded = log1mexp(log_kept) if log_kept < 0 else -np.inf
        return lattice, log_discarded

    @classmethod
    @traced(PHASE_LATTICE, "from_state_space")
    def from_state_space(
        cls, ctx: Context, space: StateSpace, num_blocks: int = 0
    ) -> "DistributedLattice":
        """Distribute an existing (driver-resident) state space."""
        nb = num_blocks or ctx.default_parallelism
        block_size = max(1, -(-space.size // nb))
        blocks = partition_state_space(space, block_size)
        rdd = ctx.parallelize(blocks, len(blocks)).cache()
        lattice = cls(ctx, rdd, space.n_items)
        lattice._renormalize()
        return lattice

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self.rdd.num_partitions

    def _log_mass(self, rdd: Optional[RDD] = None) -> float:
        """Total *stored-space* log-mass (one tree aggregation).

        The aggregation walks every block, so running it on a freshly
        cached RDD doubles as the materialisation step.
        """
        target = rdd if rdd is not None else self.rdd
        return target.tree_aggregate(
            -np.inf,
            lambda acc, b: _log_add(acc, block_log_mass(b)),
            _log_add,
        )

    def _replace_rdd(self, new_rdd: RDD) -> None:
        old = self.rdd
        self.rdd = new_rdd
        old.unpersist()

    def _renormalize(self) -> float:
        """Restore the normalisation invariant; returns the old log-mass.

        With deferred normalisation this is an O(1) driver-side offset
        update: the stored log-probs are untouched and the new offset is
        simply the aggregated stored mass.  (The aggregation also
        materialises the cache of a freshly replaced RDD.)  The returned
        value is the lattice's log-mass *relative to the previous
        normalisation* — exactly what the two-pass rescale used to
        return: kept mass after a restriction, survived mass after a
        prune.
        """
        log_mass = self._log_mass()
        if not np.isfinite(log_mass):
            raise ValueError("lattice has zero total mass (contradictory evidence?)")
        old = log_mass - self._log_offset
        self._log_offset = float(log_mass)
        return float(old)

    # ------------------------------------------------------------------
    # lattice manipulation (R1)
    # ------------------------------------------------------------------
    @traced(PHASE_LATTICE, "update")
    def update(self, pool_mask: int, log_lik_by_count: np.ndarray) -> float:
        """Bayes-update on a pooled outcome; returns log-predictive.

        One full-lattice pass: the per-count log-likelihood is applied
        while the result is cached, and the same tree aggregation that
        materialises the cache yields the new stored mass.  The change
        in stored mass is the predictive log-probability of the outcome,
        and the normalisation folds into :attr:`log_offset` — no rescale
        pass over the blocks.
        """
        pool_mask = int(pool_mask)
        ll_bc = self.ctx.broadcast(np.asarray(log_lik_by_count, dtype=np.float64))

        def apply(b: LatticeBlock) -> LatticeBlock:
            return block_update(b.copy(), pool_mask, ll_bc.value)

        updated = self.rdd.map(apply).cache()
        new_mass = self._log_mass(updated)
        if not np.isfinite(new_mass):
            updated.unpersist()
            raise ValueError("observed outcome has zero probability under the model")
        log_pred = new_mass - self._log_offset
        self._replace_rdd(updated)
        self._log_offset = float(new_mass)
        self._updates_since_checkpoint += 1
        if self._updates_since_checkpoint >= self.checkpoint_interval:
            self.rebalance(self.num_blocks)
        return float(log_pred)

    @traced(PHASE_LATTICE, "condition")
    def condition(self, positive_mask: int = 0, negative_mask: int = 0) -> None:
        """Drop states inconsistent with settled classifications."""
        if int(positive_mask) & int(negative_mask):
            raise ValueError("an individual cannot be classified both ways")
        pos, neg = int(positive_mask), int(negative_mask)
        filtered = self.rdd.map(lambda b: block_filter_consistent(b, pos, neg)).cache()
        filtered.count()
        self._replace_rdd(filtered)
        self._renormalize()

    @traced(PHASE_LATTICE, "prune")
    def prune(self, epsilon: float, bins: int = 512) -> PruneStats:
        """Histogram-guided distributed pruning.

        Instead of globally sorting states, aggregate a fixed-bin
        histogram of log-probabilities weighted by linear mass, pick the
        lowest bin edge whose upper tail holds at least ``1-ε`` mass,
        and filter below it.  Keeps at least the requested mass (may
        keep slightly more — bin-resolution conservative).
        """
        if not 0.0 <= epsilon < 1.0:
            raise ValueError("epsilon must be in [0, 1)")
        if epsilon == 0.0:
            return PruneStats(self.num_states(), 0, 0.0)
        lo, hi = self.rdd.aggregate(
            (np.inf, -np.inf),
            lambda acc, b: (
                min(acc[0], float(b.log_probs.min(initial=np.inf))),
                max(acc[1], float(b.log_probs.max(initial=-np.inf))),
            ),
            lambda a, b: (min(a[0], b[0]), max(a[1], b[1])),
        )
        if not np.isfinite(lo) or not np.isfinite(hi) or lo == hi:
            return PruneStats(self.num_states(), 0, 0.0)
        # Edges live in stored log-prob space; the offset normalises the
        # *masses* so the tail comparison against 1-ε stays calibrated.
        edges = np.linspace(lo, np.nextafter(hi, np.inf), bins + 1)
        off = self._log_offset
        hist = self.rdd.tree_aggregate(
            np.zeros(bins),
            lambda acc, b: acc + block_histogram_partial(b, edges, off),
            lambda a, b: a + b,
        )
        # Upper-tail cumulative mass; keep every bin needed for 1-ε.
        tail = np.cumsum(hist[::-1])[::-1]
        keep_bins = np.flatnonzero(tail >= 1.0 - epsilon)
        cut_bin = int(keep_bins[-1]) if keep_bins.size else 0
        threshold = edges[cut_bin]

        before = self.num_states()
        filtered = self.rdd.map(
            lambda b: LatticeBlock(
                b.n_items,
                b.masks[b.log_probs >= threshold],
                b.log_probs[b.log_probs >= threshold],
            )
        ).cache()
        filtered.count()
        self._replace_rdd(filtered)
        dropped_log_mass = self._renormalize()  # pre-prune mass was 1
        kept = self.num_states()
        dropped_mass = float(max(0.0, 1.0 - np.exp(min(dropped_log_mass, 0.0))))
        return PruneStats(kept, before - kept, dropped_mass)

    @traced(PHASE_LATTICE, "project_out_bit")
    def project_out_bit(self, bit: int, keep_positive: bool) -> None:
        """Condition on a settled individual and squeeze their bit out.

        The distributed form of lattice contraction: every surviving
        state drops the settled bit and individuals above it shift down
        one position (callers track the remapping).  Halves the
        representable index space per settled diagnosis, which is what
        keeps long screens tractable.
        """
        if not 0 <= bit < self.n_items:
            raise ValueError(f"bit {bit} outside [0, {self.n_items})")
        if self.n_items == 1:
            raise ValueError("cannot project the last remaining individual out")
        projected = self.rdd.map(
            lambda b: block_project_out_bit(b, bit, keep_positive)
        ).cache()
        projected.count()
        self._replace_rdd(projected)
        self.n_items -= 1
        self._renormalize()

    @traced(PHASE_LATTICE, "rebalance")
    def rebalance(self, num_blocks: int = 0) -> None:
        """Collect and redistribute the lattice into even, lineage-free blocks.

        Doubles as the checkpoint operation: the new RDD is a source
        collection, so recomputation never reaches past this point.
        :meth:`collect` absorbs the normalisation offset into the stored
        log-probs, so the rebuilt blocks carry true log-probabilities
        and the offset resets to zero.
        """
        space = self.collect()  # offset absorbed here
        nb = num_blocks or self.ctx.default_parallelism
        block_size = max(1, -(-space.size // nb))
        blocks = partition_state_space(space, block_size)
        rdd = self.ctx.parallelize(blocks, len(blocks)).cache()
        rdd.count()
        self._replace_rdd(rdd)
        self._log_offset = 0.0
        self._updates_since_checkpoint = 0

    # ------------------------------------------------------------------
    # test selection partials (R2) — consumed by repro.sbgt.selector
    # ------------------------------------------------------------------
    @traced(PHASE_SELECTION, "down_set_masses")
    def down_set_masses(self, pool_masks: np.ndarray) -> np.ndarray:
        """Normalised down-set mass per candidate pool (one aggregation)."""
        pools = np.asarray(pool_masks, dtype=np.uint64)
        pools_bc = self.ctx.broadcast(pools)
        off = self._log_offset
        return self.rdd.tree_aggregate(
            np.zeros(pools.size),
            lambda acc, b: acc + block_down_set_partial(b, pools_bc.value, off),
            lambda a, b: a + b,
        )

    @traced(PHASE_SELECTION, "count_distribution")
    def count_distribution(self, pool_mask: int) -> np.ndarray:
        """P(k positives in pool) for k = 0..|pool| (one aggregation)."""
        pool_mask = int(pool_mask)
        pool_size = int(popcount64(np.asarray([pool_mask], dtype=np.uint64))[0])
        off = self._log_offset
        return self.rdd.tree_aggregate(
            np.zeros(pool_size + 1),
            lambda acc, b: acc + block_count_distribution_partial(b, pool_mask, pool_size, off),
            lambda a, b: a + b,
        )

    @traced(PHASE_SELECTION, "pool_count_hists")
    def pool_count_hists(self, candidate_masks: np.ndarray) -> np.ndarray:
        """Positives-in-pool distribution per candidate (one aggregation)."""
        candidates = np.asarray(candidate_masks, dtype=np.uint64)
        max_size = int(popcount64(candidates).max()) if candidates.size else 0
        cand_bc = self.ctx.broadcast(candidates)
        off = self._log_offset
        return self.rdd.tree_aggregate(
            np.zeros((candidates.size, max_size + 1)),
            lambda acc, b: acc + block_count_hists_partial(b, cand_bc.value, max_size, off),
            lambda a, b: a + b,
        )

    @traced(PHASE_SELECTION, "refined_cell_masses")
    def refined_cell_masses(
        self, chosen: Sequence[int], candidate_masks: np.ndarray, n_cells: int
    ) -> np.ndarray:
        """Greedy look-ahead refined-cell masses (one aggregation)."""
        candidates = np.asarray(candidate_masks, dtype=np.uint64)
        chosen_t = tuple(int(c) for c in chosen)
        cand_bc = self.ctx.broadcast(candidates)
        off = self._log_offset
        return self.rdd.tree_aggregate(
            np.zeros((candidates.size, n_cells)),
            # Defaults pin loop-varying values (B023: callers re-invoke
            # this per greedy step, each shipping a fresh closure).
            lambda acc, b, chosen_t=chosen_t, bc=cand_bc, k=n_cells, off=off: acc
            + block_refined_cell_partial(b, chosen_t, bc.value, k, off),
            lambda a, b: a + b,
        )

    # ------------------------------------------------------------------
    # statistical analysis (R3)
    # ------------------------------------------------------------------
    @traced(PHASE_ANALYSIS, "marginals")
    def marginals(self) -> np.ndarray:
        """Per-individual posterior infection probabilities."""
        off = self._log_offset
        return self.rdd.tree_aggregate(
            np.zeros(self.n_items),
            lambda acc, b: acc + block_marginal_partial(b, off),
            lambda a, b: a + b,
        )

    @traced(PHASE_ANALYSIS, "entropy")
    def entropy(self) -> float:
        """Shannon entropy of the posterior (nats)."""
        off = self._log_offset
        return self.rdd.tree_aggregate(
            0.0,
            lambda acc, b: acc + block_entropy_partial(b, off),
            lambda a, b: a + b,
        )

    @traced(PHASE_ANALYSIS, "top_states")
    def top_states(self, k: int) -> List[Tuple[int, float]]:
        """Global top-k (mask, probability) pairs."""
        if k <= 0:
            return []
        partials = self.rdd.aggregate(
            [],
            lambda acc, b: heapq.nlargest(k, acc + block_top_states(b, k), key=lambda t: t[1]),
            lambda a, b: heapq.nlargest(k, a + b, key=lambda t: t[1]),
        )
        off = self._log_offset
        return [(mask, float(np.exp(lp - off))) for mask, lp in partials]

    def map_state(self) -> int:
        top = self.top_states(1)
        if not top:
            raise ValueError("empty lattice")
        return top[0][0]

    def num_states(self) -> int:
        return self.rdd.map(lambda b: b.size).sum()

    def collect(self) -> StateSpace:
        """Materialise the full lattice at the driver (tests / rebalance).

        Absorbs the normalisation offset: the returned space carries
        true log-probabilities regardless of the lattice's current
        ``log_offset``.
        """
        blocks = [b for b in self.rdd.collect() if b.size > 0]
        space = merge_blocks(blocks)
        if self._log_offset != 0.0:
            space = StateSpace(
                space.n_items, space.masks, space.log_probs - self._log_offset
            )
        return space

    def unpersist(self) -> None:
        self.rdd.unpersist()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistributedLattice(n_items={self.n_items}, blocks={self.num_blocks})"
