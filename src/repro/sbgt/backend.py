"""The :class:`PosteriorBackend` protocol — what a posterior must do.

Every consumer of a posterior in this library — the halving/lookahead/
infogain selectors, the screen stepper, the analyzer, the serving layer —
talks to the belief state through this surface and nothing else.  The
dense distributed lattice (:class:`~repro.sbgt.distributed_lattice.
DistributedLattice`) is one implementation; the sparse above-floor
representation (:class:`~repro.sbgt.sparse.SparsePosterior`) and the
SMC particle filter (:class:`~repro.sbgt.particle.ParticlePosterior`)
are approximate implementations that break the 2^N wall.

Design rules the protocol enforces:

* **No representation leaks.**  Internals like the dense lattice's
  deferred-normalisation ``log_offset``, its RDD, or a particle cloud's
  weights never cross this boundary; selection statistics
  (:meth:`PosteriorBackend.down_set_masses`,
  :meth:`PosteriorBackend.pool_count_hists`,
  :meth:`PosteriorBackend.refined_cell_masses`) come back already
  normalised.
* **Masks are Python ints at the boundary.**  Backends supporting more
  than 64 individuals cannot use uint64 state masks internally, but the
  API still speaks arbitrary-precision integer bit masks (helpers in
  :mod:`repro.util.bits` widen arrays as needed).
* **Mutation is in place.**  ``update`` / ``condition`` / ``prune`` /
  ``project_out_bit`` advance the belief state the way a screen does;
  value-returning analyses never mutate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

import numpy as np

from repro.lattice.prune import PruneStats
from repro.lattice.states import StateSpace

__all__ = ["PosteriorBackend", "BACKENDS"]

#: Backend names :func:`repro.workflows.payloads.make_posterior` accepts.
BACKENDS = ("dense", "sparse", "particle")


class PosteriorBackend(ABC):
    """Abstract belief state over a cohort's infection pattern.

    Concrete backends provide the read/write surface below.  ``n_items``
    is the number of individuals currently represented (it shrinks as
    :meth:`project_out_bit` contracts settled individuals out).
    """

    n_items: int

    # ------------------------------------------------------------------
    # lattice manipulation (operation class R1)
    # ------------------------------------------------------------------
    @abstractmethod
    def update(self, pool_mask: int, log_lik_by_count: np.ndarray) -> float:
        """Bayes-update on a pooled outcome; returns the log-predictive
        probability of the outcome under the pre-update belief."""

    @abstractmethod
    def condition(self, positive_mask: int = 0, negative_mask: int = 0) -> None:
        """Drop states inconsistent with settled classifications."""

    @abstractmethod
    def prune(self, epsilon: float) -> PruneStats:
        """Shrink the support, keeping at least ``1 - epsilon`` mass."""

    @abstractmethod
    def project_out_bit(self, bit: int, keep_positive: bool) -> None:
        """Condition on a settled individual and remove their bit."""

    def rebalance(self, num_blocks: int = 0) -> None:
        """Re-partition / checkpoint the representation.

        A storage-layout operation: backends with nothing to re-partition
        (driver-resident representations) treat it as a no-op.
        """

    # ------------------------------------------------------------------
    # test selection statistics (R2) — already normalised
    # ------------------------------------------------------------------
    @abstractmethod
    def down_set_masses(self, pool_masks: np.ndarray) -> np.ndarray:
        """P(no positives in pool) per candidate pool."""

    @abstractmethod
    def count_distribution(self, pool_mask: int) -> np.ndarray:
        """P(k positives in pool) for k = 0..|pool|."""

    @abstractmethod
    def pool_count_hists(self, candidate_masks: np.ndarray) -> np.ndarray:
        """Positives-in-pool distributions for a whole candidate table.

        Returns an ``(n_candidates, max_pool_size + 1)`` array whose row
        ``c`` is :meth:`count_distribution` of candidate ``c`` (columns
        beyond a pool's size stay zero).  One pass over the state set
        regardless of the candidate count.
        """

    @abstractmethod
    def refined_cell_masses(
        self, chosen: Sequence[int], candidate_masks: np.ndarray, n_cells: int
    ) -> np.ndarray:
        """Refined-partition cell masses for greedy look-ahead selection.

        Row ``c`` of the returned ``(n_candidates, n_cells)`` array holds
        the probability mass of every cell of the partition induced by
        the pools ``chosen + [candidate_c]`` (cell index bit ``j`` set
        iff the state intersects pool ``j``).
        """

    # ------------------------------------------------------------------
    # statistical analysis (R3)
    # ------------------------------------------------------------------
    @abstractmethod
    def marginals(self) -> np.ndarray:
        """Per-individual posterior infection probabilities."""

    @abstractmethod
    def entropy(self) -> float:
        """Shannon entropy of the posterior (nats)."""

    @abstractmethod
    def top_states(self, k: int) -> List[Tuple[int, float]]:
        """Top-k (mask, probability) pairs, highest probability first."""

    def map_state(self) -> int:
        top = self.top_states(1)
        if not top:
            raise ValueError("empty posterior")
        return top[0][0]

    @abstractmethod
    def num_states(self) -> int:
        """Number of states (or particles) currently represented."""

    @property
    def num_blocks(self) -> int:
        """Storage partitions backing the representation (1 if driver-resident)."""
        return 1

    @abstractmethod
    def collect(self) -> StateSpace:
        """Materialise the belief state as a driver-resident space.

        Backends representing more than 64 individuals raise
        ``ValueError`` — a uint64-masked :class:`StateSpace` cannot hold
        their states.
        """

    def unpersist(self) -> None:
        """Release any engine-held resources (no-op when driver-resident)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_items={self.n_items}, "
            f"states={self.num_states()})"
        )
