"""Pooled-test response models, with and without dilution effects.

A response model answers two questions about a pool of size ``n``
containing ``k`` true positives:

* inference — ``log_likelihood_by_count(outcome, n)``: the log-likelihood
  of an observed outcome for every ``k = 0..n`` at once (the vector the
  lattice update gathers from);
* simulation — ``sample(k, n, rng)``: draw an outcome for a simulated
  pool.

Dilution is the defining difficulty the Biostatistics'22 framework
models: one positive among 31 negatives is chemically diluted, so pooled
sensitivity must *decrease* as ``k/n`` falls.  Binary models here attach
an explicit dilution law to the sensitivity; the continuous model goes
further and emits a quantitative signal (log viral load), exercising the
framework's "general test response distributions beyond binary outcomes".
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_in_range, check_probability

__all__ = [
    "ResponseModel",
    "PerfectTest",
    "BinaryErrorModel",
    "DilutionErrorModel",
    "LogNormalViralLoadModel",
]

# Log-likelihood floor used in place of -inf for impossible outcomes under
# deterministic models: keeps arithmetic finite while still crushing the
# posterior mass of inconsistent states by ~300 nats.
_LOG_ZERO = -700.0


class ResponseModel:
    """Abstract pooled-test outcome distribution ``f(y | k, n)``."""

    #: True when outcomes are booleans (positive/negative calls).
    binary: bool = True

    def log_likelihood_by_count(self, outcome: Any, pool_size: int) -> np.ndarray:
        """Log f(outcome | k, n) for k = 0..pool_size (length n+1)."""
        raise NotImplementedError

    def sample(self, k_positive: int, pool_size: int, rng: RngLike = None) -> Any:
        """Draw an outcome for a pool with *k_positive* true positives."""
        raise NotImplementedError

    def sensitivity(self, k_positive: int, pool_size: int) -> float:
        """P(positive call | k positives in pool) — binary models only."""
        raise NotImplementedError

    def _check_pool(self, k_positive: int, pool_size: int) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if not 0 <= k_positive <= pool_size:
            raise ValueError("k_positive must be in [0, pool_size]")


class _BinaryModel(ResponseModel):
    """Shared machinery for positive/negative-call models."""

    binary = True

    def positive_prob_by_count(self, pool_size: int) -> np.ndarray:
        """P(positive call | k) for k = 0..pool_size."""
        return np.array(
            [self.sensitivity(k, pool_size) if k else self.false_positive_rate for k in range(pool_size + 1)]
        )

    @property
    def false_positive_rate(self) -> float:
        raise NotImplementedError

    def log_likelihood_by_count(self, outcome: Any, pool_size: int) -> np.ndarray:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        p_pos = self.positive_prob_by_count(pool_size)
        probs = p_pos if bool(outcome) else 1.0 - p_pos
        out = np.full(pool_size + 1, _LOG_ZERO)
        nz = probs > 0.0
        out[nz] = np.log(probs[nz])
        return out

    def sample(self, k_positive: int, pool_size: int, rng: RngLike = None) -> bool:
        self._check_pool(k_positive, pool_size)
        p = self.sensitivity(k_positive, pool_size) if k_positive else self.false_positive_rate
        return bool(as_rng(rng).random() < p)


class PerfectTest(_BinaryModel):
    """Error-free, dilution-free assay: positive iff the pool has a positive."""

    @property
    def false_positive_rate(self) -> float:
        return 0.0

    def sensitivity(self, k_positive: int, pool_size: int) -> float:
        self._check_pool(k_positive, pool_size)
        return 1.0 if k_positive > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "PerfectTest()"


class BinaryErrorModel(_BinaryModel):
    """Fixed sensitivity/specificity, no dilution.

    The textbook imperfect assay: any number of positives in the pool
    triggers a positive call with the same probability.
    """

    def __init__(self, sensitivity: float = 0.99, specificity: float = 0.99) -> None:
        self._sens = check_probability(sensitivity, "sensitivity")
        self._spec = check_probability(specificity, "specificity")

    @property
    def false_positive_rate(self) -> float:
        return 1.0 - self._spec

    def sensitivity(self, k_positive: int, pool_size: int) -> float:
        self._check_pool(k_positive, pool_size)
        return self._sens if k_positive > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryErrorModel(sensitivity={self._sens}, specificity={self._spec})"


class DilutionErrorModel(_BinaryModel):
    """Power-law dilution of sensitivity.

    Effective sensitivity for ``k`` positives in a pool of ``n``::

        sens(k, n) = sensitivity * (k / n) ** dilution_exponent      (k ≥ 1)

    ``dilution_exponent = 0`` recovers :class:`BinaryErrorModel`; larger
    exponents model assays that lose more signal as positives are diluted
    (a single positive in a 32-pool at exponent 0.5 keeps ~18% of the
    undiluted detection probability... the regime where naive pooling
    breaks and the Bayesian model earns its keep).
    """

    def __init__(
        self,
        sensitivity: float = 0.99,
        specificity: float = 0.99,
        dilution_exponent: float = 0.3,
    ) -> None:
        self._sens = check_probability(sensitivity, "sensitivity")
        self._spec = check_probability(specificity, "specificity")
        self._delta = check_in_range(dilution_exponent, 0.0, 10.0, "dilution_exponent")

    @property
    def false_positive_rate(self) -> float:
        return 1.0 - self._spec

    @property
    def dilution_exponent(self) -> float:
        return self._delta

    def sensitivity(self, k_positive: int, pool_size: int) -> float:
        self._check_pool(k_positive, pool_size)
        if k_positive == 0:
            return 0.0
        return self._sens * (k_positive / pool_size) ** self._delta

    def positive_prob_by_count(self, pool_size: int) -> np.ndarray:
        k = np.arange(pool_size + 1, dtype=np.float64)
        with np.errstate(divide="ignore"):
            p = self._sens * (k / pool_size) ** self._delta
        p[0] = self.false_positive_rate
        return p

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DilutionErrorModel(sensitivity={self._sens}, specificity={self._spec}, "
            f"dilution_exponent={self._delta})"
        )


class LogNormalViralLoadModel(ResponseModel):
    """Continuous quantitative response (log viral load of the pool).

    A positive individual contributes a fixed mean load; pooling ``k``
    positives into ``n`` wells dilutes the concentration to ``k/n`` of a
    single undiluted positive.  The instrument reports

    ``y | k ~ Normal(mu_pos + log(k/n), sigma_pos)``  for ``k ≥ 1``
    ``y | 0 ~ Normal(mu_neg, sigma_neg)``             (background noise)

    so the likelihood over counts is a Gaussian comb — a genuinely
    non-binary response distribution whose Bayes updates the lattice
    handles unchanged.
    """

    binary = False

    def __init__(
        self,
        mu_pos: float = 8.0,
        sigma_pos: float = 1.0,
        mu_neg: float = 0.0,
        sigma_neg: float = 1.0,
    ) -> None:
        if sigma_pos <= 0 or sigma_neg <= 0:
            raise ValueError("sigmas must be positive")
        self.mu_pos = float(mu_pos)
        self.sigma_pos = float(sigma_pos)
        self.mu_neg = float(mu_neg)
        self.sigma_neg = float(sigma_neg)

    def _means(self, pool_size: int) -> np.ndarray:
        k = np.arange(1, pool_size + 1, dtype=np.float64)
        return self.mu_pos + np.log(k / pool_size)

    def log_likelihood_by_count(self, outcome: Any, pool_size: int) -> np.ndarray:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        y = float(outcome)
        out = np.empty(pool_size + 1, dtype=np.float64)
        out[0] = (
            -0.5 * ((y - self.mu_neg) / self.sigma_neg) ** 2
            - math.log(self.sigma_neg)
            - 0.5 * math.log(2 * math.pi)
        )
        means = self._means(pool_size)
        out[1:] = (
            -0.5 * ((y - means) / self.sigma_pos) ** 2
            - math.log(self.sigma_pos)
            - 0.5 * math.log(2 * math.pi)
        )
        return out

    def sample(self, k_positive: int, pool_size: int, rng: RngLike = None) -> float:
        self._check_pool(k_positive, pool_size)
        gen = as_rng(rng)
        if k_positive == 0:
            return float(gen.normal(self.mu_neg, self.sigma_neg))
        mean = self.mu_pos + math.log(k_positive / pool_size)
        return float(gen.normal(mean, self.sigma_pos))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogNormalViralLoadModel(mu_pos={self.mu_pos}, sigma_pos={self.sigma_pos}, "
            f"mu_neg={self.mu_neg}, sigma_neg={self.sigma_neg})"
        )
