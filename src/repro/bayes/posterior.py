"""The :class:`Posterior`: lattice + response model + sequential updates.

This is the serial reference implementation of the belief state that
SBGT distributes.  The two implementations share every numerical kernel
(:mod:`repro.lattice.ops`), so agreement between them is testable to
floating-point tolerance — the invariant the integration suite leans on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple, Union

import numpy as np
from scipy.special import logsumexp

from repro.bayes.dilution import ResponseModel
from repro.bayes.evidence import EvidenceLog, TestRecord
from repro.bayes.priors import PriorSpec
from repro.lattice import ops as lops
from repro.lattice.prune import PruneStats, prune_by_mass
from repro.lattice.states import StateSpace
from repro.util.bits import intersect_count, mask_from_indices, popcount64

__all__ = ["Posterior", "Classification", "ClassificationReport"]

PoolLike = Union[int, Sequence[int]]


class Classification(enum.Enum):
    """Per-individual terminal status of a screen."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    UNDETERMINED = "undetermined"


@dataclass(frozen=True)
class ClassificationReport:
    """Thresholded read-out of the posterior marginals."""

    marginals: np.ndarray
    statuses: Tuple[Classification, ...]

    @property
    def n_classified(self) -> int:
        return sum(1 for s in self.statuses if s is not Classification.UNDETERMINED)

    @property
    def all_classified(self) -> bool:
        return self.n_classified == len(self.statuses)

    def positives(self) -> List[int]:
        return [i for i, s in enumerate(self.statuses) if s is Classification.POSITIVE]

    def negatives(self) -> List[int]:
        return [i for i, s in enumerate(self.statuses) if s is Classification.NEGATIVE]

    def undetermined(self) -> List[int]:
        return [i for i, s in enumerate(self.statuses) if s is Classification.UNDETERMINED]

    def undetermined_mask(self) -> int:
        """Bit mask of still-undetermined individuals (policy 'eligible' set)."""
        mask = 0
        for i in self.undetermined():
            mask |= 1 << i
        return mask


def _as_pool_mask(pool: PoolLike) -> int:
    if isinstance(pool, (int, np.integer)):
        mask = int(pool)
        if mask <= 0:
            raise ValueError("pool mask must select at least one individual")
        return mask
    return int(mask_from_indices(pool))


class Posterior:
    """Sequential Bayesian belief state over a cohort's infection pattern.

    Parameters
    ----------
    space:
        Initial (prior) state space; consumed and mutated in place.
    model:
        Response model supplying pooled-test likelihoods.
    track_entropy:
        When true, each update records entropy before/after (costs one
        extra sweep per test; used by information-gain analyses).
    """

    def __init__(
        self,
        space: StateSpace,
        model: ResponseModel,
        track_entropy: bool = False,
    ) -> None:
        self.space = space
        self.model = model
        self.track_entropy = bool(track_entropy)
        self.log = EvidenceLog()
        self._stage = 0
        from repro.bayes.indexmap import CohortIndexMap

        # Contraction bookkeeping (original <-> compact indices); inert
        # until the first settle().
        self._index = CohortIndexMap(space.n_items)

    @classmethod
    def from_prior(
        cls, prior: PriorSpec, model: ResponseModel, track_entropy: bool = False
    ) -> "Posterior":
        return cls(prior.build_dense(), model, track_entropy)

    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        """Original cohort size (settled individuals still counted)."""
        return self._index.n_items

    @property
    def num_live(self) -> int:
        """Individuals still represented in the lattice."""
        return self._index.num_live

    @property
    def num_tests(self) -> int:
        return self.log.num_tests

    def begin_stage(self) -> int:
        """Advance the stage counter (tests recorded after run together)."""
        self._stage += 1
        return self._stage

    # ------------------------------------------------------------------
    def settle(self, individual: int, as_positive: bool) -> None:
        """Commit a diagnosis and project the individual's bit out.

        The lattice-contraction operation (irreversible — the lattice is
        conditioned on the committed value).  Afterwards the posterior
        keeps answering in original cohort indices; *pools must not
        contain settled individuals*.  Note that lattice-reading
        selection policies (BHA & co.) access ``self.space`` directly in
        compact coordinates — the distributed session translates for
        them; serial drivers using contraction must do the same.
        """
        project = self._index.num_live > 1
        pos = self._index.settle(individual, as_positive)  # validates
        if project:
            self.space = lops.project_out_bit(self.space, pos, as_positive)

    def update(self, pool: PoolLike, outcome: Any) -> TestRecord:
        """Condition on one pooled-test outcome.

        Returns the :class:`TestRecord` appended to the evidence log.
        """
        pool_mask = _as_pool_mask(pool)
        pool_size = int(popcount64(np.asarray([pool_mask], dtype=np.uint64))[0])
        compact_pool = self._index.to_compact_mask(pool_mask)
        log_lik = self.model.log_likelihood_by_count(outcome, pool_size)

        ent_before = lops.entropy(self.space) if self.track_entropy else None
        # Predictive log-probability of the outcome before conditioning.
        counts = intersect_count(self.space.masks, compact_pool)
        log_pred = float(
            logsumexp(self.space.log_probs + log_lik[counts])
            - logsumexp(self.space.log_probs)
        )
        lops.posterior_update(self.space, compact_pool, log_lik)
        ent_after = lops.entropy(self.space) if self.track_entropy else None

        record = TestRecord(
            stage=self._stage,
            pool_mask=pool_mask,
            pool_size=pool_size,
            outcome=outcome,
            log_predictive=log_pred,
            entropy_before=ent_before,
            entropy_after=ent_after,
        )
        self.log.append(record)
        return record

    def prune(self, epsilon: float) -> PruneStats:
        """Shrink the support to the ``1 - epsilon`` high-mass core."""
        result = prune_by_mass(self.space, epsilon)
        self.space = result.space
        return result

    # ------------------------------------------------------------------
    # statistical analyses
    # ------------------------------------------------------------------
    def marginals(self) -> np.ndarray:
        """Per-individual infection probability in *original* indices."""
        compact = lops.marginals(self.space)
        if not self._index.any_settled:
            return compact
        full = np.empty(self.n_items, dtype=np.float64)
        for orig, positive in self._index.settled.items():
            full[orig] = 1.0 if positive else 0.0
        for pos, orig in enumerate(self._index.live):
            full[orig] = compact[pos]
        return full

    def entropy(self) -> float:
        return lops.entropy(self.space)

    def map_state(self) -> int:
        compact = lops.map_state(self.space)
        if not self._index.any_settled:
            return compact
        return (
            self._index.to_original_mask(compact)
            | self._index.settled_positive_mask()
        )

    def top_states(self, k: int) -> List[Tuple[int, float]]:
        return lops.top_states(self.space, k)

    def down_set_mass(self, pool: PoolLike) -> float:
        return lops.down_set_mass(
            self.space, self._index.to_compact_mask(_as_pool_mask(pool))
        )

    def classify(
        self, positive_threshold: float = 0.99, negative_threshold: float = 0.01
    ) -> ClassificationReport:
        """Threshold the marginals into a per-individual report.

        An individual is called positive when their marginal infection
        probability reaches ``positive_threshold``, negative when it
        falls to ``negative_threshold``, undetermined otherwise.
        """
        if not 0.0 <= negative_threshold < positive_threshold <= 1.0:
            raise ValueError("need 0 <= negative_threshold < positive_threshold <= 1")
        marg = self.marginals()
        statuses = tuple(
            Classification.POSITIVE
            if m >= positive_threshold
            else Classification.NEGATIVE
            if m <= negative_threshold
            else Classification.UNDETERMINED
            for m in marg
        )
        return ClassificationReport(marginals=marg, statuses=statuses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Posterior(n_items={self.n_items}, states={self.space.size}, "
            f"tests={self.num_tests})"
        )
