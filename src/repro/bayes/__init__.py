"""The Bayesian group-testing model (Biostatistics'22 statistical core).

Priors over infection states, pooled-test response models with dilution
effects (binary and continuous), and the :class:`Posterior` object tying
a lattice state space to a response model with sequential Bayes updates,
classification, and evidence tracking.
"""

from repro.bayes.priors import PriorSpec
from repro.bayes.dilution import (
    ResponseModel,
    PerfectTest,
    BinaryErrorModel,
    DilutionErrorModel,
    LogNormalViralLoadModel,
)
from repro.bayes.posterior import Posterior, Classification, ClassificationReport
from repro.bayes.evidence import EvidenceLog, TestRecord
from repro.bayes.correlated import HouseholdPrior, pairwise_correlation
from repro.bayes.indexmap import CohortIndexMap
from repro.bayes.model_selection import (
    ModelEvidence,
    compare_models,
    replay_log_evidence,
)
from repro.bayes.prevalence import (
    PrevalencePosterior,
    estimate_prevalence,
    pool_positive_prob,
)

__all__ = [
    "PriorSpec",
    "ResponseModel",
    "PerfectTest",
    "BinaryErrorModel",
    "DilutionErrorModel",
    "LogNormalViralLoadModel",
    "Posterior",
    "Classification",
    "ClassificationReport",
    "EvidenceLog",
    "TestRecord",
    "HouseholdPrior",
    "pairwise_correlation",
    "CohortIndexMap",
    "ModelEvidence",
    "compare_models",
    "replay_log_evidence",
    "PrevalencePosterior",
    "estimate_prevalence",
    "pool_positive_prob",
]
