"""Community prevalence estimation from pooled outcomes.

Surveillance's actual deliverable is not individual diagnoses — it is
"how much disease is out there".  Pooled outcomes carry that signal
directly: a pool of size ``n`` from a community at prevalence ``θ``
tests positive with probability

    P(+ | θ, n) = (1 − sp) · (1−θ)ⁿ + Σ_{k≥1} C(n,k) θᵏ(1−θ)^{n−k} · se(k, n)

(the response model supplies ``se(k, n)``, dilution included).  With a
Beta prior on θ, a dense grid posterior over [0, 1] is exact to grid
resolution and takes microseconds — no MCMC needed for one dimension.
This estimator consumes the same evidence logs the screens produce, so
a program gets prevalence tracking for free from its testing traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.special import gammaln

from repro.bayes.dilution import ResponseModel
from repro.util.validation import check_positive_int

__all__ = ["PrevalencePosterior", "estimate_prevalence", "pool_positive_prob"]


def _log_binom(n: int, k: np.ndarray) -> np.ndarray:
    return gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1)


def pool_positive_prob(theta: np.ndarray, pool_size: int, model: ResponseModel) -> np.ndarray:
    """P(pool tests positive | prevalence θ) for a binary response model.

    Vectorised over a θ grid: mixes the model's per-count positive
    probabilities with Binomial(pool_size, θ) weights.
    """
    if not getattr(model, "binary", False):
        raise ValueError("prevalence estimation requires a binary response model")
    pool_size = check_positive_int(pool_size, "pool_size")
    theta = np.asarray(theta, dtype=np.float64)
    k = np.arange(pool_size + 1, dtype=np.float64)
    log_binom = _log_binom(pool_size, k)
    p_pos_given_k = model.positive_prob_by_count(pool_size)

    t = np.clip(theta, 1e-12, 1 - 1e-12)[..., None]
    log_weights = log_binom + k * np.log(t) + (pool_size - k) * np.log1p(-t)
    return np.einsum("...k,k->...", np.exp(log_weights), p_pos_given_k)


@dataclass
class PrevalencePosterior:
    """Grid posterior over community prevalence θ."""

    grid: np.ndarray  # θ values
    log_density: np.ndarray  # unnormalised log posterior on the grid

    def __post_init__(self) -> None:
        self.grid = np.asarray(self.grid, dtype=np.float64)
        self.log_density = np.asarray(self.log_density, dtype=np.float64)
        if self.grid.shape != self.log_density.shape or self.grid.ndim != 1:
            raise ValueError("grid and log_density must be equal-length 1-D")

    def _weights(self) -> np.ndarray:
        w = np.exp(self.log_density - self.log_density.max())
        return w / w.sum()

    @property
    def mean(self) -> float:
        return float(self._weights() @ self.grid)

    @property
    def mode(self) -> float:
        return float(self.grid[int(np.argmax(self.log_density))])

    def credible_interval(self, mass: float = 0.95) -> Tuple[float, float]:
        """Central credible interval by grid quantiles."""
        if not 0.0 < mass < 1.0:
            raise ValueError("mass must be in (0, 1)")
        cdf = np.cumsum(self._weights())
        lo_q, hi_q = (1 - mass) / 2, 1 - (1 - mass) / 2
        lo = self.grid[int(np.searchsorted(cdf, lo_q))]
        hi = self.grid[min(int(np.searchsorted(cdf, hi_q)), self.grid.size - 1)]
        return float(lo), float(hi)

    def prob_above(self, threshold: float) -> float:
        """P(θ > threshold) — e.g. an outbreak-alarm trigger."""
        return float(self._weights()[self.grid > threshold].sum())


def estimate_prevalence(
    outcomes: Sequence[Tuple[int, bool]],
    model: ResponseModel,
    prior_a: float = 1.0,
    prior_b: float = 30.0,
    grid_size: int = 2001,
) -> PrevalencePosterior:
    """Posterior over prevalence from ``(pool_size, outcome)`` pairs.

    Pools are assumed drawn from exchangeable community members (the
    surveillance regime).  Default prior Beta(1, 30) has mean ≈ 3 % —
    weakly informative for community screening; pass ``prior_a=prior_b=1``
    for flat.
    """
    if not outcomes:
        raise ValueError("at least one pooled outcome required")
    if prior_a <= 0 or prior_b <= 0:
        raise ValueError("Beta prior parameters must be positive")
    grid_size = check_positive_int(grid_size, "grid_size")
    grid = np.linspace(1e-6, 1 - 1e-6, grid_size)
    log_post = (prior_a - 1) * np.log(grid) + (prior_b - 1) * np.log1p(-grid)

    # Group by pool size: one vectorised likelihood evaluation per size.
    by_size: dict = {}
    for pool_size, outcome in outcomes:
        pos, tot = by_size.get(int(pool_size), (0, 0))
        by_size[int(pool_size)] = (pos + bool(outcome), tot + 1)
    for pool_size, (positives, total) in by_size.items():
        p_pos = np.clip(pool_positive_prob(grid, pool_size, model), 1e-12, 1 - 1e-12)
        log_post += positives * np.log(p_pos) + (total - positives) * np.log1p(-p_pos)

    return PrevalencePosterior(grid=grid, log_density=log_post)