"""Evidence (marginal-likelihood) tracking across a test sequence.

Each pooled test contributes a predictive log-probability
``log m(y_t | y_{1:t-1})``; their sum is the model evidence of the whole
screen.  Sessions log these alongside the tests so analyses can compare
response models or detect assay drift (a collapsing evidence trail means
the model stopped explaining the outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["TestRecord", "EvidenceLog"]


@dataclass(frozen=True)
class TestRecord:
    """One pooled test: who was pooled, what came back, how surprising."""

    # Not a pytest class, despite the name pattern.
    __test__ = False

    stage: int
    pool_mask: int
    pool_size: int
    outcome: Any
    log_predictive: float
    entropy_before: Optional[float] = None
    entropy_after: Optional[float] = None

    @property
    def information_gain(self) -> Optional[float]:
        """Entropy reduction delivered by this test (nats), if tracked."""
        if self.entropy_before is None or self.entropy_after is None:
            return None
        return self.entropy_before - self.entropy_after


@dataclass
class EvidenceLog:
    """Append-only log of the test sequence."""

    records: List[TestRecord] = field(default_factory=list)

    def append(self, record: TestRecord) -> None:
        self.records.append(record)

    @property
    def num_tests(self) -> int:
        return len(self.records)

    @property
    def num_stages(self) -> int:
        return len({r.stage for r in self.records})

    @property
    def log_evidence(self) -> float:
        """Total log marginal likelihood of all observed outcomes."""
        return float(sum(r.log_predictive for r in self.records))

    def tests_per_stage(self) -> List[Tuple[int, int]]:
        counts: dict = {}
        for r in self.records:
            counts[r.stage] = counts.get(r.stage, 0) + 1
        return sorted(counts.items())

    def total_information_gain(self) -> float:
        return float(
            sum(g for r in self.records if (g := r.information_gain) is not None)
        )

    def to_json(self) -> str:
        """Serialize the full test trail (audit-log export).

        Pool masks are emitted both raw and as member index lists so the
        log is readable without bit arithmetic.  Non-JSON outcomes
        (e.g. numpy floats) are coerced through ``float``/``bool``.
        """
        import json

        def coerce(outcome):
            if isinstance(outcome, bool):
                return outcome
            try:
                return float(outcome)
            except (TypeError, ValueError):
                return str(outcome)

        payload = [
            {
                "stage": r.stage,
                "pool_mask": int(r.pool_mask),
                "pool_members": [
                    i for i in range(64) if (int(r.pool_mask) >> i) & 1
                ],
                "pool_size": r.pool_size,
                "outcome": coerce(r.outcome),
                "log_predictive": r.log_predictive,
                "entropy_before": r.entropy_before,
                "entropy_after": r.entropy_after,
            }
            for r in self.records
        ]
        return json.dumps(
            {
                "num_tests": self.num_tests,
                "num_stages": self.num_stages,
                "log_evidence": self.log_evidence,
                "tests": payload,
            },
            indent=2,
        )
