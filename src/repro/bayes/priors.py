"""Prior risk specifications for a testing cohort.

The Bayesian framework's key practical advantage over frequency-designed
pooling (Dorfman grids etc.) is that it *acknowledges varying individual
risk*: each individual carries their own prior infection probability,
from symptoms, exposure history, or surveillance context.  A
:class:`PriorSpec` is that vector plus convenience constructors for the
cohort structures used in the experiments (uniform prevalence, risk
tiers, outbreak contacts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.lattice.builder import build_dense_prior, build_restricted_prior
from repro.lattice.states import StateSpace
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive_int, check_probability

__all__ = ["PriorSpec"]

# Risks are clipped into this open interval: a 0/1 prior is a settled
# diagnosis, which belongs in conditioning, not in the prior model.
_MIN_RISK = 1e-9
_MAX_RISK = 1.0 - 1e-9


@dataclass(frozen=True)
class PriorSpec:
    """Per-individual prior infection probabilities."""

    risks: np.ndarray

    def __post_init__(self) -> None:
        risks = np.asarray(self.risks, dtype=np.float64)
        if risks.ndim != 1 or risks.size == 0:
            raise ValueError("risks must be a non-empty 1-D array")
        if np.any(~np.isfinite(risks)) or np.any(risks < 0.0) or np.any(risks > 1.0):
            raise ValueError("risks must be probabilities in [0, 1]")
        object.__setattr__(self, "risks", np.clip(risks, _MIN_RISK, _MAX_RISK))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, n: int, prevalence: float) -> "PriorSpec":
        """Everyone shares one prior prevalence."""
        n = check_positive_int(n, "n")
        prevalence = check_probability(prevalence, "prevalence")
        return cls(np.full(n, prevalence))

    @classmethod
    def from_tiers(cls, tiers: Sequence[Tuple[int, float]]) -> "PriorSpec":
        """Risk tiers, e.g. ``[(8, 0.01), (4, 0.10)]`` = 8 low + 4 high."""
        parts = []
        for count, risk in tiers:
            count = check_positive_int(count, "tier count")
            risk = check_probability(risk, "tier risk")
            parts.append(np.full(count, risk))
        if not parts:
            raise ValueError("at least one tier required")
        return cls(np.concatenate(parts))

    @classmethod
    def sampled(
        cls, n: int, mean_prevalence: float, dispersion: float = 2.0, rng: RngLike = None
    ) -> "PriorSpec":
        """Heterogeneous risks from a Beta distribution with given mean.

        ``dispersion`` is the Beta pseudo-count total (smaller = more
        spread between low- and high-risk individuals).
        """
        n = check_positive_int(n, "n")
        m = check_probability(mean_prevalence, "mean_prevalence")
        if dispersion <= 0:
            raise ValueError("dispersion must be positive")
        m = min(max(m, 1e-6), 1 - 1e-6)
        a, b = m * dispersion, (1.0 - m) * dispersion
        return cls(as_rng(rng).beta(a, b, size=n))

    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        return int(self.risks.size)

    @property
    def expected_positives(self) -> float:
        return float(self.risks.sum())

    def subset(self, indices: Sequence[int]) -> "PriorSpec":
        """Prior restricted to the given individuals (for sub-cohorts)."""
        idx = np.asarray(list(indices), dtype=np.intp)
        if idx.size == 0:
            raise ValueError("subset must keep at least one individual")
        return PriorSpec(self.risks[idx])

    def sorted_by_risk(self, descending: bool = True) -> Tuple["PriorSpec", np.ndarray]:
        """Risk-sorted copy plus the permutation applied.

        The Bayesian Halving Algorithm's candidate pools are prefixes in
        marginal-probability order, so cohorts are usually re-indexed
        this way before a session.
        """
        order = np.argsort(-self.risks if descending else self.risks, kind="stable")
        return PriorSpec(self.risks[order]), order

    # ------------------------------------------------------------------
    # lattice construction
    # ------------------------------------------------------------------
    def build_dense(self) -> StateSpace:
        """Full 2^n lattice with this prior (n ≤ 30)."""
        return build_dense_prior(self.risks)

    def build_restricted(self, max_positives: int) -> Tuple[StateSpace, float]:
        """Rank-restricted lattice; returns (space, log mass discarded)."""
        return build_restricted_prior(self.risks, max_positives)
