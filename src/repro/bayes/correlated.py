"""Correlated priors: household / cluster infection structure.

The product-Bernoulli prior of :class:`~repro.bayes.priors.PriorSpec`
treats individuals as independent — but transmission clusters: if one
household member is infected, the others probably are too.  Lattice
models carry *arbitrary* distributions over infection states, so this
module builds exactly such priors:

* each household ``h`` is seeded with probability ``intro_prob`` (an
  introduction from the community);
* given an introduction, every member is infected independently with
  probability ``attack_rate`` (conditioned on at least one member
  actually infected — an introduction that infects nobody is no
  introduction);
* without one, nobody in the household is infected.

The resulting prior is exchangeable within a household but strongly
positively correlated — pooling whole households first becomes optimal,
which is the behaviour the household-screening example demonstrates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy.special import logsumexp

from repro.lattice.states import StateSpace
from repro.util.bits import popcount64
from repro.util.validation import check_positive_int, check_probability

__all__ = ["HouseholdPrior", "pairwise_correlation"]


class HouseholdPrior:
    """Cluster-structured prior over a cohort of households.

    Parameters
    ----------
    household_sizes:
        Members per household, in cohort order (individual ``i`` belongs
        to the household covering index ``i``).  Total must be ≤ 26 for
        dense construction.
    intro_prob:
        Probability a household has a community introduction.
    attack_rate:
        Within-household infection probability given an introduction.
    """

    def __init__(
        self,
        household_sizes: Sequence[int],
        intro_prob: float = 0.05,
        attack_rate: float = 0.5,
    ) -> None:
        sizes = [check_positive_int(s, "household size") for s in household_sizes]
        if not sizes:
            raise ValueError("at least one household required")
        self.household_sizes = sizes
        self.n_items = sum(sizes)
        if self.n_items > 26:
            raise ValueError("dense household prior limited to 26 individuals total")
        self.intro_prob = check_probability(intro_prob, "intro_prob")
        self.attack_rate = check_probability(attack_rate, "attack_rate")
        if not 0.0 < self.intro_prob < 1.0 or not 0.0 < self.attack_rate < 1.0:
            raise ValueError("intro_prob and attack_rate must lie strictly in (0, 1)")
        offsets = [0]
        for s in sizes:
            offsets.append(offsets[-1] + s)
        self._offsets = offsets

    # ------------------------------------------------------------------
    def households(self) -> List[Tuple[int, int]]:
        """(start index, size) per household."""
        return [
            (self._offsets[i], self.household_sizes[i])
            for i in range(len(self.household_sizes))
        ]

    def household_mask(self, h: int) -> int:
        """Bit mask of household *h*'s members."""
        start, size = self.households()[h]
        return ((1 << size) - 1) << start

    def _household_log_prior(self, size: int) -> np.ndarray:
        """Log P(local pattern) over the ``2^size`` patterns of one household.

        P(0) = (1-q) + q·(1-r)^m  (no introduction, or one that fizzled —
        folded together since a fizzled introduction is unobservable);
        P(pattern with k ≥ 1) = q · r^k (1-r)^(m-k) / (1 - (1-r)^m) ·
        (1 - (1-r)^m) = q · r^k (1-r)^(m-k)... the conditioning constant
        cancels, leaving the intuitive form.
        """
        q, r = self.intro_prob, self.attack_rate
        patterns = np.arange(1 << size, dtype=np.uint64)
        k = popcount64(patterns).astype(np.float64)
        with np.errstate(divide="ignore"):
            log_pattern = k * np.log(r) + (size - k) * np.log1p(-r)
        out = np.log(q) + log_pattern
        out[0] = np.logaddexp(np.log1p(-q), np.log(q) + size * np.log1p(-r))
        # Normalise (the fizzle-folding leaves an O(1) constant).
        return out - logsumexp(out)

    def build_dense(self) -> StateSpace:
        """The full cohort lattice with the household-product prior."""
        masks = np.arange(1 << self.n_items, dtype=np.uint64)
        log_probs = np.zeros(masks.size, dtype=np.float64)
        for start, size in self.households():
            local = (masks >> np.uint64(start)) & np.uint64((1 << size) - 1)
            table = self._household_log_prior(size)
            log_probs += table[local.astype(np.int64)]
        log_probs -= logsumexp(log_probs)
        return StateSpace(self.n_items, masks, log_probs)

    def marginal_risk(self) -> float:
        """P(a given individual is infected) under this prior."""
        # P(infected) = q·r regardless of household size (the fizzle fold
        # returns non-infection mass to the zero pattern).
        return self.intro_prob * self.attack_rate

    def draw_truth(self, rng=None) -> int:
        """Sample a ground-truth infection mask from the prior."""
        from repro.util.rng import as_rng

        gen = as_rng(rng)
        mask = 0
        for start, size in self.households():
            if gen.random() < self.intro_prob:
                for j in range(size):
                    if gen.random() < self.attack_rate:
                        mask |= 1 << (start + j)
        return mask


def pairwise_correlation(space: StateSpace, i: int, j: int) -> float:
    """Pearson correlation of infection indicators ``i`` and ``j``."""
    if i == j:
        raise ValueError("need two distinct individuals")
    from repro.util.bits import bit_column

    p = space.probs()
    xi = bit_column(space.masks, i).astype(np.float64)
    xj = bit_column(space.masks, j).astype(np.float64)
    mi, mj = float(p @ xi), float(p @ xj)
    cov = float(p @ (xi * xj)) - mi * mj
    var_i = mi * (1 - mi)
    var_j = mj * (1 - mj)
    if var_i <= 0 or var_j <= 0:
        return 0.0
    return cov / np.sqrt(var_i * var_j)
