"""Cohort index bookkeeping for lattice contraction.

When settled individuals are projected out of a lattice, the remaining
bits compact downward, but callers keep speaking original cohort
indices.  :class:`CohortIndexMap` owns that translation for both the
serial :class:`~repro.bayes.posterior.Posterior` and the distributed
:class:`~repro.sbgt.session.SBGTSession`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.util.bits import indices_from_mask

__all__ = ["CohortIndexMap"]


class CohortIndexMap:
    """Tracks live (in-lattice) vs settled (projected-out) individuals."""

    def __init__(self, n_items: int) -> None:
        if n_items < 1:
            raise ValueError("n_items must be >= 1")
        self.n_items = int(n_items)
        self._live: List[int] = list(range(n_items))
        self._settled: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    @property
    def live(self) -> List[int]:
        """Original indices still represented, in compact-bit order."""
        return list(self._live)

    @property
    def num_live(self) -> int:
        return len(self._live)

    @property
    def settled(self) -> Dict[int, bool]:
        """Original index → committed diagnosis (True = positive)."""
        return dict(self._settled)

    @property
    def any_settled(self) -> bool:
        return bool(self._settled)

    def is_settled(self, individual: int) -> bool:
        return individual in self._settled

    def compact_position(self, individual: int) -> int:
        """Current lattice bit of a live individual."""
        try:
            return self._live.index(individual)
        except ValueError:
            raise ValueError(f"individual {individual} is not live") from None

    # ------------------------------------------------------------------
    def settle(self, individual: int, as_positive: bool) -> int:
        """Mark *individual* settled; returns the compact bit removed.

        The caller must project that bit out of its lattice *before*
        issuing further translations.
        """
        if individual in self._settled:
            raise ValueError(f"individual {individual} already settled")
        pos = self.compact_position(individual)
        self._live.pop(pos)
        self._settled[individual] = bool(as_positive)
        return pos

    # ------------------------------------------------------------------
    def to_compact_mask(self, original_mask: int) -> int:
        """Translate an original-index mask into compact lattice bits."""
        if not self._settled:
            return int(original_mask)
        position = {orig: i for i, orig in enumerate(self._live)}
        out = 0
        for orig in indices_from_mask(int(original_mask)):
            if orig in self._settled:
                raise ValueError(
                    f"individual {orig} is already settled and projected out"
                )
            out |= 1 << position[orig]
        return out

    def to_original_mask(self, compact_mask: int) -> int:
        """Translate compact lattice bits back to original indices."""
        if not self._settled:
            return int(compact_mask)
        out = 0
        for pos in indices_from_mask(int(compact_mask)):
            out |= 1 << self._live[pos]
        return out

    def settled_positive_mask(self) -> int:
        """Original-index mask of every settled-positive individual."""
        mask = 0
        for orig, positive in self._settled.items():
            if positive:
                mask |= 1 << orig
        return mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CohortIndexMap(n_items={self.n_items}, live={len(self._live)}, "
            f"settled={len(self._settled)})"
        )
