"""Response-model comparison by marginal likelihood (Bayes factors).

A screen's evidence log records every pooled outcome.  Replaying that
trail under candidate response models yields each model's log marginal
likelihood of the observed data; their differences are log Bayes
factors.  In operation this answers "is our assay actually diluting?"
from screening data alone — no ground truth needed — which is how a
surveillance program would detect that its inference model has drifted
from the chemistry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.bayes.dilution import ResponseModel
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec
from repro.metrics.reporting import format_table

__all__ = ["ModelEvidence", "compare_models", "replay_log_evidence", "format_comparison"]

TestTrail = Sequence[Tuple[int, Any]]  # (pool_mask, outcome) pairs


@dataclass(frozen=True)
class ModelEvidence:
    """One candidate model's score on an observed trail."""

    name: str
    log_evidence: float

    def bayes_factor_over(self, other: "ModelEvidence") -> float:
        """Linear-scale Bayes factor of self vs *other* (may overflow to inf)."""
        return float(np.exp(self.log_evidence - other.log_evidence))


def replay_log_evidence(
    prior: PriorSpec, model: ResponseModel, trail: TestTrail
) -> float:
    """Log marginal likelihood of an outcome trail under one model.

    Replays the exact Bayes updates the screen performed, but under
    *model*; the accumulated predictive log-probabilities are the log
    evidence.  The trail's pool masks are in original cohort indices.
    """
    posterior = Posterior.from_prior(prior, model)
    for pool_mask, outcome in trail:
        posterior.update(int(pool_mask), outcome)
    return posterior.log.log_evidence


def compare_models(
    prior: PriorSpec,
    models: Dict[str, ResponseModel],
    trail: TestTrail,
) -> List[ModelEvidence]:
    """Score candidate models on one trail, best first.

    All models must produce non-zero likelihood for every observed
    outcome (a model that cannot explain an outcome scores ``-inf`` and
    ranks last rather than raising).
    """
    if not models:
        raise ValueError("at least one candidate model required")
    if not trail:
        raise ValueError("an empty trail cannot discriminate models")
    scored = []
    for name, model in models.items():
        try:
            log_ev = replay_log_evidence(prior, model, trail)
        except ValueError:
            log_ev = float("-inf")
        scored.append(ModelEvidence(name=name, log_evidence=log_ev))
    scored.sort(key=lambda m: -m.log_evidence)
    return scored


def format_comparison(scored: Sequence[ModelEvidence]) -> str:
    """Render a comparison as a table with log Bayes factors vs the best."""
    if not scored:
        raise ValueError("nothing to format")
    best = scored[0]
    rows = [
        [m.name, m.log_evidence, f"{m.log_evidence - best.log_evidence:+.3f}"]
        for m in scored
    ]
    return format_table(
        ["model", "log evidence", "log BF vs best"],
        rows,
        title="Response-model comparison",
    )
