"""Request parsing and serialization for the serving layer.

Each endpoint's JSON body parses into a frozen request dataclass that
validates eagerly (:class:`BadRequest` maps to HTTP 400), normalizes
into a canonical parameter dict (the echo in responses, and the input
to the result-cache / micro-batcher key), and knows how to *execute*
itself against the workflow layer.  The CLI builds the same dataclasses
from argparse namespaces, which is what makes ``--json`` output and
server responses byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.bayes.dilution import ResponseModel
from repro.bayes.priors import PriorSpec
from repro.halving.policy import SelectionPolicy
from repro.sbgt.config import SBGTConfig
from repro.simulate.scenario import SCENARIOS, get_scenario
from repro.workflows.payloads import (
    BACKEND_HELP,
    calculator_payload,
    make_model,
    make_policy,
    request_digest,
    screen_payload,
)

__all__ = [
    "BadRequest",
    "AssaySpec",
    "CalculatorRequest",
    "ScreenRequest",
    "SessionCreateRequest",
    "SurveilRequest",
    "MAX_COHORT",
    "MAX_COHORT_APPROX",
    "MAX_SITES",
]

#: Fleet-size ceiling for one surveillance campaign request.
MAX_SITES = 64

#: Dense-lattice ceiling shared with the CLI's ``--cohort`` bound.
MAX_COHORT = 24

#: Cohort ceiling for the approximate (sparse/particle) backends, which
#: never materialize the 2^N lattice.
MAX_COHORT_APPROX = 1024


class BadRequest(ValueError):
    """Client-side request error (HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BadRequest(message)


def _get_int(payload: Mapping[str, Any], key: str, default: int) -> int:
    value = payload.get(key, default)
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"{key} must be an integer")
    return value


def _get_float(payload: Mapping[str, Any], key: str, default: float) -> float:
    value = payload.get(key, default)
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{key} must be a number")
    return float(value)


def _get_bool(payload: Mapping[str, Any], key: str, default: bool) -> bool:
    value = payload.get(key, default)
    _require(isinstance(value, bool), f"{key} must be a boolean")
    return value


def _check_keys(payload: Mapping[str, Any], allowed: frozenset, what: str) -> None:
    unknown = sorted(set(payload) - allowed)
    _require(not unknown, f"unknown {what} field(s): {', '.join(unknown)}")


@dataclass(frozen=True)
class AssaySpec:
    """Flat assay parameters (mirrors the CLI's ``--assay`` flags)."""

    assay: str = "dilution"
    sensitivity: float = 0.98
    specificity: float = 0.995
    dilution: float = 0.3

    _FIELDS = frozenset({"assay", "sensitivity", "specificity", "dilution"})

    @classmethod
    def from_payload(cls, payload: Optional[Mapping[str, Any]]) -> "AssaySpec":
        if payload is None:
            return cls()
        _require(isinstance(payload, Mapping), "assay must be an object")
        _check_keys(payload, cls._FIELDS, "assay")
        assay = payload.get("assay", "dilution")
        _require(assay in ("perfect", "binary", "dilution"),
                 "assay must be one of: perfect, binary, dilution")
        spec = cls(
            assay=assay,
            sensitivity=_get_float(payload, "sensitivity", 0.98),
            specificity=_get_float(payload, "specificity", 0.995),
            dilution=_get_float(payload, "dilution", 0.3),
        )
        _require(0.5 < spec.sensitivity <= 1.0, "sensitivity must be in (0.5, 1]")
        _require(0.5 < spec.specificity <= 1.0, "specificity must be in (0.5, 1]")
        _require(0.0 <= spec.dilution <= 1.0, "dilution must be in [0, 1]")
        return spec

    def build(self) -> ResponseModel:
        return make_model(self.assay, self.sensitivity, self.specificity, self.dilution)

    def canonical(self) -> Dict[str, Any]:
        return {
            "assay": self.assay,
            "sensitivity": self.sensitivity,
            "specificity": self.specificity,
            "dilution": self.dilution,
        }


def _check_policy(name: Any) -> str:
    _require(isinstance(name, str), "policy must be a string")
    try:
        make_policy(name)
    except ValueError as exc:
        raise BadRequest(str(exc)) from None
    return name


def _check_backend(name: Any) -> str:
    _require(isinstance(name, str), "backend must be a string")
    _require(name in ("dense", "sparse", "particle"),
             f"unknown posterior backend {name!r} (try: {BACKEND_HELP})")
    return name


def _check_cohort(cohort: int, backend: str) -> int:
    limit = MAX_COHORT if backend == "dense" else MAX_COHORT_APPROX
    hint = "dense lattice" if backend == "dense" else f"{backend} backend"
    _require(1 <= cohort <= limit, f"cohort must be in [1, {limit}] ({hint})")
    return cohort


@dataclass(frozen=True)
class CalculatorRequest:
    """``POST /calculator`` — the pool/don't-pool decision table."""

    cohort: int = 12
    prevalences: Tuple[float, ...] = (0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.30)
    replications: int = 15
    policy: str = "bha"
    seed: int = 0
    backend: str = "dense"
    assay: AssaySpec = AssaySpec()

    _FIELDS = frozenset(
        {"cohort", "prevalences", "replications", "policy", "seed", "backend", "assay"}
    )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "CalculatorRequest":
        _require(isinstance(payload, Mapping), "request body must be a JSON object")
        _check_keys(payload, cls._FIELDS, "calculator")
        backend = _check_backend(payload.get("backend", "dense"))
        cohort = _check_cohort(_get_int(payload, "cohort", 12), backend)
        prevalences = payload.get("prevalences", list(cls().prevalences))
        _require(
            isinstance(prevalences, (list, tuple)) and len(prevalences) > 0,
            "prevalences must be a non-empty array",
        )
        _require(
            all(isinstance(p, (int, float)) and not isinstance(p, bool)
                and 0.0 < float(p) < 1.0 for p in prevalences),
            "every prevalence must be a number in (0, 1)",
        )
        _require(len(prevalences) <= 32, "at most 32 prevalence levels per request")
        replications = _get_int(payload, "replications", 15)
        _require(1 <= replications <= 200, "replications must be in [1, 200]")
        return cls(
            cohort=cohort,
            prevalences=tuple(float(p) for p in prevalences),
            replications=replications,
            policy=_check_policy(payload.get("policy", "bha")),
            seed=_get_int(payload, "seed", 0),
            backend=backend,
            assay=AssaySpec.from_payload(payload.get("assay")),
        )

    def canonical(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "cohort": self.cohort,
            "prevalences": list(self.prevalences),
            "replications": self.replications,
            "policy": self.policy,
            "seed": self.seed,
            "assay": self.assay.canonical(),
        }
        # Keep the dense default byte-identical to pre-backend payloads.
        if self.backend != "dense":
            out["backend"] = self.backend
        return out

    def key(self) -> str:
        return request_digest("calculator", self.canonical())

    def execute(self) -> Dict[str, Any]:
        """Run the Monte-Carlo table (serial path; no engine context)."""
        from repro.workflows.calculator import pooling_calculator

        model = self.assay.build()
        policy_name = self.policy
        entries = pooling_calculator(
            model,
            lambda: make_policy(policy_name),
            prevalences=self.prevalences,
            cohort_size=self.cohort,
            replications=self.replications,
            rng=self.seed,
            backend=self.backend,
        )
        return calculator_payload(entries, request=self.canonical())


def _scenario_field(payload: Mapping[str, Any]) -> Optional[str]:
    scenario = payload.get("scenario")
    if scenario is None:
        return None
    _require(isinstance(scenario, str) and scenario in SCENARIOS,
             f"scenario must be one of: {', '.join(sorted(SCENARIOS))}")
    return scenario


@dataclass(frozen=True)
class ScreenRequest:
    """``POST /screen`` — one-shot cohort classification."""

    cohort: int = 16
    prevalence: float = 0.02
    scenario: Optional[str] = None
    policy: str = "bha"
    seed: int = 0
    max_stages: int = 60
    compact: bool = False
    backend: str = "dense"
    assay: AssaySpec = AssaySpec()

    _FIELDS = frozenset(
        {"cohort", "prevalence", "scenario", "policy", "seed", "max_stages",
         "compact", "backend", "assay"}
    )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ScreenRequest":
        _require(isinstance(payload, Mapping), "request body must be a JSON object")
        _check_keys(payload, cls._FIELDS, "screen")
        backend = _check_backend(payload.get("backend", "dense"))
        cohort = _check_cohort(_get_int(payload, "cohort", 16), backend)
        prevalence = _get_float(payload, "prevalence", 0.02)
        _require(0.0 < prevalence < 1.0, "prevalence must be in (0, 1)")
        max_stages = _get_int(payload, "max_stages", 60)
        _require(1 <= max_stages <= 500, "max_stages must be in [1, 500]")
        return cls(
            cohort=cohort,
            prevalence=prevalence,
            scenario=_scenario_field(payload),
            policy=_check_policy(payload.get("policy", "bha")),
            seed=_get_int(payload, "seed", 0),
            max_stages=max_stages,
            compact=_get_bool(payload, "compact", False),
            backend=backend,
            assay=AssaySpec.from_payload(payload.get("assay")),
        )

    def canonical(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "cohort": self.cohort,
            "policy": self.policy,
            "seed": self.seed,
            "max_stages": self.max_stages,
            "compact": self.compact,
        }
        # Keep the dense default byte-identical to pre-backend payloads.
        if self.backend != "dense":
            out["backend"] = self.backend
        if self.scenario is not None:
            out["scenario"] = self.scenario
        else:
            out["prevalence"] = self.prevalence
            out["assay"] = self.assay.canonical()
        return out

    def key(self) -> str:
        return request_digest("screen", self.canonical())

    def build(self) -> Tuple[PriorSpec, ResponseModel, SelectionPolicy, SBGTConfig]:
        """(prior, model, policy, config) — shared by CLI and server."""
        if self.scenario is not None:
            prior, model = get_scenario(self.scenario).build(self.cohort, rng=self.seed)
        else:
            prior = PriorSpec.uniform(self.cohort, self.prevalence)
            model = self.assay.build()
        policy = make_policy(self.policy)
        config = SBGTConfig(max_stages=self.max_stages,
                            compact_classified=self.compact,
                            backend=self.backend)
        return prior, model, policy, config

    def execute(self, ctx) -> Dict[str, Any]:
        """Run the screen: on the shared engine context for the dense
        backend, driver-local for the approximate backends (*ctx* may
        then be ``None``)."""
        from repro.sbgt.session import SBGTSession

        prior, model, policy, config = self.build()
        session = SBGTSession(ctx, prior, model, config)
        try:
            result = session.run_screen(policy, rng=self.seed)
        finally:
            session.close()
        return screen_payload(result, request=self.canonical())


def _check_allocator(name: Any) -> str:
    _require(isinstance(name, str), "allocator must be a string")
    from repro.surveil.allocator import make_allocator

    try:
        make_allocator(name)
    except ValueError as exc:
        raise BadRequest(str(exc)) from None
    return name


def _check_fleet(name: Any) -> str:
    from repro.surveil.sites import FLEET_KINDS

    _require(isinstance(name, str) and name in FLEET_KINDS,
             f"fleet must be one of: {', '.join(FLEET_KINDS)}")
    return name


@dataclass(frozen=True)
class SurveilRequest:
    """``POST /surveil`` — a whole multi-site surveillance campaign.

    Builds a seeded fleet, runs the round loop to completion, and
    returns the campaign payload.  The same dataclass backs
    ``python -m repro surveil --json`` and the campaign session API
    (``POST /campaigns``), so bodies stay byte-identical across entry
    points.
    """

    sites: int = 6
    cohort: int = 10
    rounds: int = 8
    budget: int = 6
    allocator: str = "thompson"
    policy: str = "bha"
    fleet: str = "heterogeneous"
    seed: int = 0
    max_stages: int = 40
    backend: str = "dense"
    assay: AssaySpec = AssaySpec(assay="binary")

    _FIELDS = frozenset(
        {"sites", "cohort", "rounds", "budget", "allocator", "policy", "fleet",
         "seed", "max_stages", "backend", "assay"}
    )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SurveilRequest":
        _require(isinstance(payload, Mapping), "request body must be a JSON object")
        _check_keys(payload, cls._FIELDS, "surveil")
        backend = _check_backend(payload.get("backend", "dense"))
        fleet = _check_fleet(payload.get("fleet", "heterogeneous"))
        sites = _get_int(payload, "sites", 6)
        _require(1 <= sites <= MAX_SITES, f"sites must be in [1, {MAX_SITES}]")
        cohort = _check_cohort(_get_int(payload, "cohort", 10), backend)
        if fleet == "household":
            _require(backend == "dense",
                     "household fleets need the dense backend (correlated prior)")
            _require(cohort % 3 == 0 and cohort <= MAX_COHORT,
                     f"household fleets need cohort a multiple of 3, <= {MAX_COHORT}")
        rounds = _get_int(payload, "rounds", 8)
        _require(1 <= rounds <= 200, "rounds must be in [1, 200]")
        budget = _get_int(payload, "budget", 6)
        _require(1 <= budget <= 128, "budget must be in [1, 128]")
        max_stages = _get_int(payload, "max_stages", 40)
        _require(1 <= max_stages <= 500, "max_stages must be in [1, 500]")
        assay = (AssaySpec.from_payload(payload["assay"]) if "assay" in payload
                 else AssaySpec(assay="binary"))
        return cls(
            sites=sites,
            cohort=cohort,
            rounds=rounds,
            budget=budget,
            allocator=_check_allocator(payload.get("allocator", "thompson")),
            policy=_check_policy(payload.get("policy", "bha")),
            fleet=fleet,
            seed=_get_int(payload, "seed", 0),
            max_stages=max_stages,
            backend=backend,
            assay=assay,
        )

    def canonical(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "sites": self.sites,
            "cohort": self.cohort,
            "rounds": self.rounds,
            "budget": self.budget,
            "allocator": self.allocator,
            "policy": self.policy,
            "fleet": self.fleet,
            "seed": self.seed,
            "max_stages": self.max_stages,
            "assay": self.assay.canonical(),
        }
        # Keep the dense default byte-identical across request kinds.
        if self.backend != "dense":
            out["backend"] = self.backend
        return out

    def key(self) -> str:
        return request_digest("surveil", self.canonical())

    def build_fleet(self):
        """The seeded :class:`~repro.surveil.sites.SiteSpec` tuple."""
        from repro.surveil.sites import make_fleet

        a = self.assay
        if self.fleet == "household":
            overrides = {"sensitivity": a.sensitivity, "specificity": a.specificity}
        else:
            overrides = {
                "assay": a.assay,
                "sensitivity": a.sensitivity,
                "specificity": a.specificity,
                "dilution": a.dilution,
            }
        return make_fleet(self.fleet, self.sites, self.cohort, self.seed, **overrides)

    def build_campaign(self, ctx):
        """A fresh :class:`~repro.surveil.campaign.Campaign` (shared by
        the one-shot endpoint, the session API, and the CLI)."""
        from repro.surveil.campaign import Campaign, CampaignConfig

        config = CampaignConfig(
            rounds=self.rounds,
            budget=self.budget,
            allocator=self.allocator,
            policy=self.policy,
            backend=self.backend,
            max_stages=self.max_stages,
            seed=self.seed,
        )
        return Campaign(self.build_fleet(), config, ctx=ctx)

    def execute(self, ctx) -> Dict[str, Any]:
        """Run the whole campaign; *ctx* may be ``None`` (serial screens)."""
        from repro.workflows.payloads import surveil_payload

        return surveil_payload(self.build_campaign(ctx).run(), request=self.canonical())


@dataclass(frozen=True)
class SessionCreateRequest:
    """``POST /sessions`` — start an interactive sequential screen.

    The server holds the belief state and proposes pools; the client
    owns the physical assays (or their simulation) and posts outcomes.
    """

    cohort: int = 16
    prevalence: float = 0.02
    scenario: Optional[str] = None
    policy: str = "bha"
    seed: int = 0
    max_stages: int = 60
    compact: bool = False
    positive_threshold: float = 0.99
    negative_threshold: float = 0.01
    backend: str = "dense"
    assay: AssaySpec = AssaySpec()

    _FIELDS = frozenset(
        {"cohort", "prevalence", "scenario", "policy", "seed", "max_stages",
         "compact", "positive_threshold", "negative_threshold", "backend", "assay"}
    )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SessionCreateRequest":
        _require(isinstance(payload, Mapping), "request body must be a JSON object")
        _check_keys(payload, cls._FIELDS, "session")
        backend = _check_backend(payload.get("backend", "dense"))
        cohort = _check_cohort(_get_int(payload, "cohort", 16), backend)
        prevalence = _get_float(payload, "prevalence", 0.02)
        _require(0.0 < prevalence < 1.0, "prevalence must be in (0, 1)")
        max_stages = _get_int(payload, "max_stages", 60)
        _require(1 <= max_stages <= 500, "max_stages must be in [1, 500]")
        pos = _get_float(payload, "positive_threshold", 0.99)
        neg = _get_float(payload, "negative_threshold", 0.01)
        _require(0.0 <= neg < pos <= 1.0,
                 "thresholds must satisfy 0 <= negative < positive <= 1")
        return cls(
            cohort=cohort,
            prevalence=prevalence,
            scenario=_scenario_field(payload),
            policy=_check_policy(payload.get("policy", "bha")),
            seed=_get_int(payload, "seed", 0),
            max_stages=max_stages,
            compact=_get_bool(payload, "compact", False),
            positive_threshold=pos,
            negative_threshold=neg,
            backend=backend,
            assay=AssaySpec.from_payload(payload.get("assay")),
        )

    def canonical(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "cohort": self.cohort,
            "policy": self.policy,
            "seed": self.seed,
            "max_stages": self.max_stages,
            "compact": self.compact,
            "positive_threshold": self.positive_threshold,
            "negative_threshold": self.negative_threshold,
        }
        # Keep the dense default byte-identical to pre-backend payloads.
        if self.backend != "dense":
            out["backend"] = self.backend
        if self.scenario is not None:
            out["scenario"] = self.scenario
        else:
            out["prevalence"] = self.prevalence
            out["assay"] = self.assay.canonical()
        return out

    def build(self) -> Tuple[PriorSpec, ResponseModel, SelectionPolicy, SBGTConfig]:
        if self.scenario is not None:
            prior, model = get_scenario(self.scenario).build(self.cohort, rng=self.seed)
        else:
            prior = PriorSpec.uniform(self.cohort, self.prevalence)
            model = self.assay.build()
        policy = make_policy(self.policy)
        config = SBGTConfig(
            max_stages=self.max_stages,
            compact_classified=self.compact,
            positive_threshold=self.positive_threshold,
            negative_threshold=self.negative_threshold,
            backend=self.backend,
        )
        return prior, model, policy, config
