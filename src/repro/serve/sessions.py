"""The interactive session and campaign registries.

A *serve session* is one sequential screen whose assays happen outside
the server: the server owns the belief state (an
:class:`~repro.sbgt.session.SBGTSession` on the shared engine context)
and the stage protocol (a :class:`~repro.sbgt.stepper.ScreenStepper`),
the client owns the physical pools.  The registry bounds how many live
at once, expires idle ones, and serializes access per session (two
concurrent result submissions for the same screen would corrupt the
evidence trail).

A *campaign session* is the surveillance analogue: a live
:class:`~repro.surveil.campaign.Campaign` advanced round by round via
``POST /campaigns/{id}/round``, so a client can watch the allocator
learn (or interleave rounds with its own decisions) instead of getting
only the finished result.  :class:`CampaignRegistry` applies the same
bounding/TTL/locking discipline.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from typing import Any, Dict, List, Optional

from repro.engine.lockorder import OrderedLock
from repro.sbgt.session import SBGTSession
from repro.sbgt.stepper import ScreenStepper
from repro.serve.protocol import SessionCreateRequest, SurveilRequest

__all__ = [
    "ServeSession",
    "SessionRegistry",
    "SessionLimitError",
    "CampaignSession",
    "CampaignRegistry",
]


class SessionLimitError(RuntimeError):
    """Registry is full (HTTP 503)."""


def _pool_members(mask: int) -> List[int]:
    return [i for i in range(mask.bit_length()) if (mask >> i) & 1]


class ServeSession:
    """One live interactive screen."""

    def __init__(self, session_id: str, request: SessionCreateRequest,
                 session: SBGTSession, stepper: ScreenStepper) -> None:
        self.id = session_id
        self.request = request
        self.session = session
        self.stepper = stepper
        self.created = time.monotonic()
        self.last_touch = self.created
        # Per-session mutual exclusion for engine-touching operations.
        self.lock = asyncio.Lock()

    def touch(self) -> None:
        self.last_touch = time.monotonic()

    def idle_s(self) -> float:
        return time.monotonic() - self.last_touch

    # ------------------------------------------------------------------
    def snapshot(self, include_marginals: bool = True) -> Dict[str, Any]:
        """The session-state document every session endpoint returns."""
        stepper = self.stepper
        report = stepper.report
        out: Dict[str, Any] = {
            "session_id": self.id,
            "request": self.request.canonical(),
            "n_items": self.session.n_items,
            "done": stepper.done,
            "exhausted_budget": stepper.exhausted_budget,
            "stages_used": stepper.stages_used,
            "num_tests": stepper.num_tests,
            "num_samples": stepper.num_samples,
            "classification": {
                "statuses": [s.name.lower() for s in report.statuses],
            },
        }
        if include_marginals:
            out["classification"]["marginals"] = [float(m) for m in report.marginals]
        return out

    def proposal_payload(self) -> Dict[str, Any]:
        """``GET /sessions/{id}/next-pool`` body (engine work done by caller)."""
        pools = self.stepper.next_pools()
        return {
            "session_id": self.id,
            "done": self.stepper.done,
            "stage": self.stepper.stages_used + (1 if pools else 0),
            "pools": [
                {"mask": p, "members": _pool_members(p), "size": bin(p).count("1")}
                for p in pools
            ],
        }

    def close(self) -> None:
        self.session.close()


class SessionRegistry:
    """Bounded, TTL-swept map of live sessions."""

    def __init__(self, ctx, max_sessions: int = 64, ttl_s: float = 900.0) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self._ctx = ctx
        self.max_sessions = max_sessions
        self.ttl_s = float(ttl_s)
        self._sessions: Dict[str, ServeSession] = {}
        self._lock = OrderedLock("SessionRegistry._lock")
        self.created = 0
        self.expired = 0
        self.closed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    def create(self, request: SessionCreateRequest) -> ServeSession:
        """Build the distributed lattice for a new screen (engine work —
        call from an executor thread, not the event loop)."""
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise SessionLimitError(
                    f"session limit reached ({self.max_sessions}); "
                    "close or expire sessions first"
                )
        prior, model, policy, config = request.build()
        session = SBGTSession(self._ctx, prior, model, config)
        stepper = ScreenStepper(session, policy)
        serve_session = ServeSession(uuid.uuid4().hex[:16], request, session, stepper)
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                session.close()
                raise SessionLimitError(
                    f"session limit reached ({self.max_sessions}); "
                    "close or expire sessions first"
                )
            self._sessions[serve_session.id] = serve_session
            self.created += 1
        return serve_session

    def get(self, session_id: str) -> Optional[ServeSession]:
        with self._lock:
            return self._sessions.get(session_id)

    def close(self, session_id: str) -> bool:
        with self._lock:
            serve_session = self._sessions.pop(session_id, None)
            if serve_session is None:
                return False
            self.closed += 1
        serve_session.close()
        return True

    def sweep(self) -> List[str]:
        """Expire idle sessions past the TTL; returns the expired ids."""
        with self._lock:
            stale = [s for s in self._sessions.values() if s.idle_s() > self.ttl_s]
            for s in stale:
                del self._sessions[s.id]
                self.expired += 1
        for s in stale:
            s.close()
        return [s.id for s in stale]

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for s in sessions:
            s.close()

    def snapshot(self) -> Dict[str, Any]:
        """Counters for ``/metrics``."""
        with self._lock:
            active = len(self._sessions)
        return {
            "active": active,
            "max_sessions": self.max_sessions,
            "ttl_s": self.ttl_s,
            "created": self.created,
            "expired": self.expired,
            "closed": self.closed,
        }


class CampaignSession:
    """One live multi-site surveillance campaign."""

    def __init__(self, campaign_id: str, request: SurveilRequest, campaign) -> None:
        self.id = campaign_id
        self.request = request
        self.campaign = campaign
        self.created = time.monotonic()
        self.last_touch = self.created
        # Per-campaign mutual exclusion: two concurrent /round calls
        # would double-run a round and corrupt the belief fold.
        self.lock = asyncio.Lock()

    def touch(self) -> None:
        self.last_touch = time.monotonic()

    def idle_s(self) -> float:
        return time.monotonic() - self.last_touch

    def snapshot(self) -> Dict[str, Any]:
        """The campaign-state document every campaign endpoint returns."""
        doc = self.campaign.snapshot()
        doc["campaign_id"] = self.id
        doc["request"] = self.request.canonical()
        return doc

    def close(self) -> None:
        """Campaigns hold no engine resources between rounds."""


class CampaignRegistry:
    """Bounded, TTL-swept map of live campaigns.

    Creation is driver-side and cheap (no lattice is built until a
    round runs), so unlike :meth:`SessionRegistry.create` this can run
    on the event loop.
    """

    def __init__(self, ctx, max_campaigns: int = 64, ttl_s: float = 900.0) -> None:
        if max_campaigns < 1:
            raise ValueError("max_campaigns must be >= 1")
        self._ctx = ctx
        self.max_campaigns = max_campaigns
        self.ttl_s = float(ttl_s)
        self._campaigns: Dict[str, CampaignSession] = {}
        self._lock = OrderedLock("CampaignRegistry._lock")
        self.created = 0
        self.expired = 0
        self.closed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._campaigns)

    def create(self, request: SurveilRequest) -> CampaignSession:
        with self._lock:
            if len(self._campaigns) >= self.max_campaigns:
                raise SessionLimitError(
                    f"campaign limit reached ({self.max_campaigns}); "
                    "close or expire campaigns first"
                )
            campaign = request.build_campaign(self._ctx)
            session = CampaignSession(uuid.uuid4().hex[:16], request, campaign)
            self._campaigns[session.id] = session
            self.created += 1
        return session

    def get(self, campaign_id: str) -> Optional[CampaignSession]:
        with self._lock:
            return self._campaigns.get(campaign_id)

    def close(self, campaign_id: str) -> bool:
        with self._lock:
            session = self._campaigns.pop(campaign_id, None)
            if session is None:
                return False
            self.closed += 1
        session.close()
        return True

    def sweep(self) -> List[str]:
        """Expire idle campaigns past the TTL; returns the expired ids."""
        with self._lock:
            stale = [c for c in self._campaigns.values() if c.idle_s() > self.ttl_s]
            for c in stale:
                del self._campaigns[c.id]
                self.expired += 1
        for c in stale:
            c.close()
        return [c.id for c in stale]

    def close_all(self) -> None:
        with self._lock:
            campaigns = list(self._campaigns.values())
            self._campaigns.clear()
        for c in campaigns:
            c.close()

    def snapshot(self) -> Dict[str, Any]:
        """Counters for ``/metrics``."""
        with self._lock:
            active = len(self._campaigns)
        return {
            "active": active,
            "max_campaigns": self.max_campaigns,
            "ttl_s": self.ttl_s,
            "created": self.created,
            "expired": self.expired,
            "closed": self.closed,
        }
