"""The serving application: routing, backpressure, shared engine context.

``ReproServer`` is the front door the ROADMAP's "heavy traffic" north
star needs: one long-lived engine :class:`~repro.engine.context.Context`
shared across requests, CPU work pushed off the event loop onto a
bounded thread pool, identical concurrent requests coalesced by the
:class:`~repro.serve.batcher.MicroBatcher`, repeat requests served from
the :class:`~repro.serve.cache.ResultCache`, and a bounded admission
queue that sheds load with 429 (compute queue full) / 503 (session
registry full) instead of melting down.

Endpoints (all JSON)::

    GET  /healthz                      liveness + queue depth
    GET  /metrics                      hub-fed counters and latency histograms
                                       (?format=prometheus for text exposition)
    POST /calculator                   pool/don't-pool decision table
    POST /screen                       one-shot cohort classification
    POST /surveil                      whole multi-site campaign, one shot
    POST /sessions                     start an interactive screen
    GET  /sessions/{id}                session snapshot
    GET  /sessions/{id}/next-pool      next stage's pool proposals
    POST /sessions/{id}/results        submit assay outcomes
    DELETE /sessions/{id}              close a session
    POST /campaigns                    start a round-by-round campaign
    GET  /campaigns/{id}               campaign snapshot
    POST /campaigns/{id}/round         advance the campaign one round
    DELETE /campaigns/{id}             close a campaign
    GET  /debug/events                 flight-recorder window (?kind=&trace_id=&limit=)
    GET  /debug/traces/{trace_id}      every retained event of one trace + summary
    GET  /debug/slow                   slow-op log (ops above the threshold)
    GET  /debug/chrome                 live Chrome trace-event export
    POST /debug/profile/start          attach the sampling profiler (?hz=)
    POST /debug/profile/stop           detach it; returns collapsed stacks
    GET  /debug/profile                profiler status
    GET  /debug/profile/flamegraph     flamegraph HTML of collected samples

Responses for ``/calculator`` and ``/screen`` are byte-identical to
``python -m repro calculator --json`` / ``screen --json``; serving
metadata (cache/batch disposition) travels in ``X-Repro-Source``
headers so the bodies stay diffable.

Every request runs under a :func:`~repro.engine.tracing.trace_scope`
(honouring an ``X-Trace-Id`` request header, minting an id otherwise)
and echoes the id in the ``X-Repro-Trace`` response header, so a client
can immediately ask ``/debug/traces/{id}`` for everything — request,
batch, job, stage, task, shuffle, cache — its call caused.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextvars
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.engine.config import EngineConfig
from repro.engine.context import Context
from repro.engine.lockorder import OrderedLock
from repro.engine.tracing import trace_scope
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ResultCache
from repro.serve.events import BatchExecuted, RequestEnd, ServeMetricsListener, SessionEvent
from repro.serve.http import HttpError, HttpServer, Request, Response, json_response
from repro.serve.protocol import (
    BadRequest,
    CalculatorRequest,
    ScreenRequest,
    SessionCreateRequest,
    SurveilRequest,
)
from repro.serve.sessions import (
    CampaignRegistry,
    CampaignSession,
    ServeSession,
    SessionLimitError,
    SessionRegistry,
)

__all__ = ["ServeConfig", "ReproServer", "serve"]


@dataclass(frozen=True)
class ServeConfig:
    """Server tuning knobs (all CLI-exposed via ``repro serve``)."""

    host: str = "127.0.0.1"
    port: int = 8000
    #: Engine parallelism of the shared context (thread mode).
    workers: int = 4
    #: Executor backend of the shared context: serial/threads/processes.
    engine_mode: str = "threads"
    #: Threads that run workload jobs off the event loop.
    compute_threads: int = 4
    #: Micro-batcher collection window, seconds.
    batch_window_s: float = 0.002
    #: Result-cache capacity, entries (0 disables caching).
    cache_entries: int = 256
    #: Admission bound: queued+running compute jobs before 429s.
    max_inflight: int = 32
    max_sessions: int = 64
    session_ttl_s: float = 900.0
    #: Flight-recorder ring size behind the /debug endpoints.
    flight_capacity: int = 4096
    #: Ops slower than this land in GET /debug/slow.
    slow_threshold_s: float = 0.1
    #: Posterior backend applied to requests that don't name one.
    default_backend: str = "dense"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.default_backend not in ("dense", "sparse", "particle"):
            raise ValueError(
                "default_backend must be dense/sparse/particle, "
                f"got {self.default_backend!r}"
            )
        if self.engine_mode not in ("serial", "threads", "processes"):
            raise ValueError(
                f"engine_mode must be serial/threads/processes, got {self.engine_mode!r}"
            )
        if self.compute_threads < 1:
            raise ValueError("compute_threads must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")


class ReproServer:
    """One serving process: engine context + HTTP front end."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.ctx = Context(
            config=EngineConfig(
                mode=self.config.engine_mode,
                parallelism=self.config.workers,
                flight_capacity=self.config.flight_capacity,
                slow_threshold_s=self.config.slow_threshold_s,
            )
        )
        # Materialize the executor pool before the listening socket (or
        # any client connection) exists.  Process-mode workers fork the
        # whole pool when the executor is built; a worker forked mid-
        # request would inherit live connection fds, and a connection
        # the driver closes never reaches EOF while a long-lived worker
        # holds a duplicate.
        _ = self.ctx.executor
        # One hub for everything: the engine registry publishes job
        # rollups into ctx.metrics_hub, and the serve listener folds the
        # bus stream into the same hub — /metrics (JSON and Prometheus)
        # renders from that single snapshot.
        self.metrics_listener = ServeMetricsListener(hub=self.ctx.metrics_hub)
        self.ctx.add_listener(self.metrics_listener)
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_entries) if self.config.cache_entries else None
        )
        self.sessions = SessionRegistry(
            self.ctx, self.config.max_sessions, self.config.session_ttl_s
        )
        self.campaigns = CampaignRegistry(
            self.ctx, self.config.max_sessions, self.config.session_ttl_s
        )
        self.batcher = MicroBatcher(
            self._run_compute,
            window_s=self.config.batch_window_s,
            on_batch=self._post_batch_event,
        )
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.compute_threads, thread_name_prefix="serve-compute"
        )
        # Conservative: distributed-lattice jobs share one Context, so
        # engine-touching thunks serialize here while the serial-path
        # calculator replications run concurrently on the pool.
        self._engine_lock = OrderedLock("ReproServer._engine_lock")
        self._inflight = 0
        self._started = time.monotonic()
        self._http = HttpServer(self.handle, self.config.host, self.config.port)
        self._sweeper: Optional[asyncio.Task] = None
        # On-demand sampling profiler behind POST /debug/profile/*.
        self._profiler = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the listener; returns the actual (host, port)."""
        host, port = await self._http.start()
        self._sweeper = asyncio.get_running_loop().create_task(self._sweep_loop())
        return host, port

    async def serve_forever(self) -> None:
        await self._http.serve_forever()

    async def close(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None
        await self._http.close()
        if self._profiler is not None:
            self._profiler.stop()
            self._profiler.uninstall()
            self._profiler = None
        self.sessions.close_all()
        self.campaigns.close_all()
        self._executor.shutdown(wait=True, cancel_futures=True)
        self.ctx.stop()

    async def _sweep_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(min(60.0, max(1.0, self.config.session_ttl_s / 4)))
                for sid in self.sessions.sweep():
                    self._post(SessionEvent(sid, "expired"))
                for cid in self.campaigns.sweep():
                    self._post(SessionEvent(cid, "campaign_expired"))
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # compute plumbing
    # ------------------------------------------------------------------
    async def _run_compute(self, thunk: Callable[[], Any]) -> Any:
        loop = asyncio.get_running_loop()
        # run_in_executor does not propagate contextvars: carry the
        # request's trace scope onto the compute thread explicitly so
        # engine events stay stamped with the originating trace_id.
        return await loop.run_in_executor(
            self._executor, contextvars.copy_context().run, thunk
        )

    def _post(self, event) -> None:
        bus = self.ctx.event_bus
        if bus:
            bus.post(event)

    def _post_batch_event(self, key: str, waiters: int, wall_s: float) -> None:
        self._post(BatchExecuted(key, waiters, wall_s))

    def _admit(self) -> None:
        if self._inflight >= self.config.max_inflight:
            raise HttpError(
                429,
                f"compute queue full ({self.config.max_inflight} in flight); retry",
            )
        self._inflight += 1

    async def _cached_batched(
        self, endpoint: str, key: str, thunk: Callable[[], Any]
    ) -> Tuple[Dict[str, Any], str]:
        """The shared fast path: cache → micro-batcher → executor."""
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                return hit, "cache"
        jobs_before = self.batcher.jobs
        self._admit()
        try:
            payload = await self.batcher.submit(key, thunk)
        finally:
            self._inflight -= 1
        source = "computed" if self.batcher.jobs > jobs_before else "batched"
        if self.cache is not None:
            self.cache.put(key, payload)
        return payload, source

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def handle(self, request: Request) -> Response:
        t0 = time.perf_counter()
        # One trace per request: an X-Trace-Id header adopts the
        # caller's id, otherwise a fresh one is minted.  The scope is
        # token-reset on exit, so keep-alive connections cannot leak a
        # trace into the next request.
        client_trace = request.headers.get("x-trace-id", "").strip() or None
        with trace_scope(trace_id=client_trace, name=request.path) as tc:
            endpoint, response, source = await self._route(request)
            wall = time.perf_counter() - t0
            if 400 <= response.status < 500:
                source = "rejected"
            elif response.status >= 500:
                source = "error"
            self._post(RequestEnd(endpoint, response.status, wall, source))
        response.headers.setdefault("X-Repro-Source", source)
        response.headers.setdefault("X-Repro-Trace", tc.trace_id)
        return response

    async def _route(self, request: Request) -> Tuple[str, Response, str]:
        segments = [s for s in request.path.split("/") if s]
        method = request.method
        try:
            if segments == ["healthz"] and method == "GET":
                return "/healthz", self._healthz(), "computed"
            if segments == ["metrics"] and method == "GET":
                return "/metrics", self._metrics(request), "computed"
            if segments and segments[0] == "debug":
                if segments[1:2] == ["profile"]:
                    return self._debug_profile(segments[2:], method, request)
                if method != "GET":
                    raise HttpError(405, f"{method} not allowed on /debug")
                return self._debug(segments[1:], request)
            if segments == ["calculator"] and method == "POST":
                return await self._calculator(request)
            if segments == ["screen"] and method == "POST":
                return await self._screen(request)
            if segments == ["surveil"] and method == "POST":
                return await self._surveil(request)
            if segments == ["campaigns"] and method == "POST":
                return await self._campaign_create(request)
            if len(segments) == 2 and segments[0] == "campaigns":
                if method == "GET":
                    return self._campaign_get(segments[1])
                if method == "DELETE":
                    return await self._campaign_delete(segments[1])
                raise HttpError(405, f"{method} not allowed here")
            if (
                len(segments) == 3
                and segments[0] == "campaigns"
                and segments[2] == "round"
                and method == "POST"
            ):
                return await self._campaign_round(segments[1])
            if segments == ["sessions"] and method == "POST":
                return await self._session_create(request)
            if len(segments) == 2 and segments[0] == "sessions":
                if method == "GET":
                    return self._session_get(segments[1])
                if method == "DELETE":
                    return await self._session_delete(segments[1])
                raise HttpError(405, f"{method} not allowed here")
            if (
                len(segments) == 3
                and segments[0] == "sessions"
                and segments[2] == "next-pool"
                and method == "GET"
            ):
                return await self._session_next_pool(segments[1])
            if (
                len(segments) == 3
                and segments[0] == "sessions"
                and segments[2] == "results"
                and method == "POST"
            ):
                return await self._session_results(request, segments[1])
            if segments and segments[0] in (
                "healthz", "metrics", "calculator", "screen", "surveil",
                "sessions", "campaigns",
            ):
                raise HttpError(405, f"{method} not allowed on /{'/'.join(segments)}")
            raise HttpError(404, f"no such endpoint: /{'/'.join(segments)}")
        except BadRequest as exc:
            endpoint = "/" + (segments[0] if segments else "")
            return endpoint, json_response({"error": str(exc)}, 400), "rejected"
        except SessionLimitError as exc:
            endpoint = "/" + (segments[0] if segments else "sessions")
            return endpoint, json_response({"error": str(exc)}, 503), "rejected"
        except HttpError as exc:
            endpoint = "/" + (segments[0] if segments else "")
            return (
                endpoint,
                json_response({"error": exc.message}, exc.status),
                "rejected",
            )

    # ------------------------------------------------------------------
    # stateless endpoints
    # ------------------------------------------------------------------
    def _healthz(self) -> Response:
        return json_response(
            {
                "status": "ok",
                "uptime_s": round(time.monotonic() - self._started, 3),
                "inflight": self._inflight,
                "sessions": len(self.sessions),
                "campaigns": len(self.campaigns),
            }
        )

    def _metrics(self, request: Request) -> Response:
        fmt = request.query.get("format", "json")
        if fmt == "prometheus":
            text = self.ctx.metrics_hub.render_prometheus()
            return Response(
                body=text.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        if fmt != "json":
            raise HttpError(400, f"unknown metrics format {fmt!r} (json|prometheus)")
        doc = self.metrics_listener.snapshot()
        doc["uptime_s"] = round(time.monotonic() - self._started, 3)
        doc["batcher"]["counters"] = self.batcher.snapshot()
        doc["result_cache"] = (
            self.cache.snapshot() if self.cache is not None else {"enabled": False}
        )
        doc["session_registry"] = self.sessions.snapshot()
        doc["campaign_registry"] = self.campaigns.snapshot()
        doc["engine"]["registry_jobs"] = len(self.ctx.metrics.jobs)
        doc["engine"]["registry_task_time_s"] = round(
            self.ctx.metrics.total_task_time(), 6
        )
        return json_response(doc)

    def _debug(self, rest, request: Request) -> Tuple[str, Response, str]:
        """The flight-recorder window: ``/debug/{events,traces,slow,chrome}``."""
        recorder = self.ctx.flight_recorder
        if recorder is None:
            raise HttpError(404, "flight recorder is disabled on this server")
        if rest == ["events"]:
            try:
                limit = int(request.query.get("limit", "256"))
            except ValueError:
                raise HttpError(400, "limit must be an integer") from None
            events = recorder.events(
                kind=request.query.get("kind") or None,
                trace_id=request.query.get("trace_id") or None,
                limit=limit,
            )
            doc = {"recorder": recorder.snapshot(), "events": events}
            return "/debug/events", json_response(doc), "computed"
        if len(rest) == 2 and rest[0] == "traces":
            trace_id = rest[1]
            doc = {
                "summary": recorder.trace_summary(trace_id),
                "events": recorder.trace(trace_id),
            }
            return "/debug/traces/{trace_id}", json_response(doc), "computed"
        if rest == ["slow"]:
            doc = {
                "slow_threshold_s": recorder.slow_threshold_s,
                "events": recorder.slow(),
            }
            return "/debug/slow", json_response(doc), "computed"
        if rest == ["chrome"]:
            from repro.obs.chrome import chrome_trace

            trace_id = request.query.get("trace_id") or None
            records = recorder.events(trace_id=trace_id, limit=recorder.capacity)
            return "/debug/chrome", json_response(chrome_trace(records)), "computed"
        raise HttpError(404, f"no such debug endpoint: /debug/{'/'.join(rest)}")

    def _debug_profile(
        self, rest, method: str, request: Request
    ) -> Tuple[str, Response, str]:
        """On-demand sampling profiler: ``/debug/profile/{start,stop}``.

        Start installs a :class:`~repro.obs.sampler.Sampler`, so serial
        and thread-mode engine work is profiled directly and process-
        mode workers relay their samples through task results.  Stop
        detaches it and returns the collapsed stacks collected.
        """
        from repro.obs.sampler import Sampler

        if rest == ["start"] and method == "POST":
            if self._profiler is not None and self._profiler.running:
                raise HttpError(409, "profiler already running; stop it first")
            try:
                hz = float(request.query.get("hz", "100"))
            except ValueError:
                raise HttpError(400, "hz must be a number") from None
            if not 0 < hz <= 1000:
                raise HttpError(400, "hz must be in (0, 1000]")
            self._profiler = Sampler(hz=hz).start().install()
            doc = {"profiling": True, **self._profiler.snapshot()}
            return "/debug/profile/start", json_response(doc), "computed"
        if rest == ["stop"] and method == "POST":
            profiler = self._profiler
            if profiler is None:
                raise HttpError(409, "profiler is not running")
            profiler.stop()
            profiler.uninstall()
            self._profiler = None
            doc = {
                "profiling": False,
                **profiler.snapshot(),
                "folded": profiler.folded(),
            }
            return "/debug/profile/stop", json_response(doc), "computed"
        if rest == [] and method == "GET":
            profiler = self._profiler
            doc = {"profiling": False} if profiler is None else {
                "profiling": profiler.running, **profiler.snapshot()
            }
            return "/debug/profile", json_response(doc), "computed"
        if rest == ["flamegraph"] and method == "GET":
            profiler = self._profiler
            if profiler is None:
                raise HttpError(409, "profiler is not running")
            return (
                "/debug/profile/flamegraph",
                Response(
                    body=profiler.flamegraph_html(title="repro serve profile").encode(
                        "utf-8"
                    ),
                    content_type="text/html; charset=utf-8",
                ),
                "computed",
            )
        raise HttpError(
            404, f"no such debug endpoint: /debug/profile/{'/'.join(rest)}"
        )

    def _with_default_backend(self, payload: Any) -> Any:
        """Fill in the server's default backend when the body omits one.

        With the stock ``dense`` default this is the identity, so
        payload bytes (and cache keys) are untouched.
        """
        if (
            self.config.default_backend != "dense"
            and isinstance(payload, dict)
            and "backend" not in payload
        ):
            return {**payload, "backend": self.config.default_backend}
        return payload

    async def _calculator(self, request: Request) -> Tuple[str, Response, str]:
        req = CalculatorRequest.from_payload(self._with_default_backend(request.json()))
        payload, source = await self._cached_batched(
            "/calculator", req.key(), req.execute
        )
        return "/calculator", json_response(payload), source

    async def _screen(self, request: Request) -> Tuple[str, Response, str]:
        req = ScreenRequest.from_payload(self._with_default_backend(request.json()))
        ctx = self.ctx
        lock = self._engine_lock

        def thunk() -> Dict[str, Any]:
            with lock:
                return req.execute(ctx)

        payload, source = await self._cached_batched("/screen", req.key(), thunk)
        return "/screen", json_response(payload), source

    async def _surveil(self, request: Request) -> Tuple[str, Response, str]:
        req = SurveilRequest.from_payload(self._with_default_backend(request.json()))
        ctx = self.ctx
        lock = self._engine_lock

        def thunk() -> Dict[str, Any]:
            with lock:
                return req.execute(ctx)

        payload, source = await self._cached_batched("/surveil", req.key(), thunk)
        return "/surveil", json_response(payload), source

    # ------------------------------------------------------------------
    # campaign endpoints (round-by-round surveillance)
    # ------------------------------------------------------------------
    def _require_campaign(self, campaign_id: str) -> CampaignSession:
        campaign = self.campaigns.get(campaign_id)
        if campaign is None:
            raise HttpError(404, f"no such campaign: {campaign_id}")
        campaign.touch()
        return campaign

    async def _campaign_create(self, request: Request) -> Tuple[str, Response, str]:
        req = SurveilRequest.from_payload(self._with_default_backend(request.json()))
        campaign = self.campaigns.create(req)
        self._post(SessionEvent(campaign.id, "campaign_created"))
        return "/campaigns", json_response(campaign.snapshot(), 201), "computed"

    def _campaign_get(self, campaign_id: str) -> Tuple[str, Response, str]:
        campaign = self._require_campaign(campaign_id)
        return "/campaigns/{id}", json_response(campaign.snapshot()), "computed"

    async def _campaign_round(self, campaign_id: str) -> Tuple[str, Response, str]:
        campaign = self._require_campaign(campaign_id)
        lock = self._engine_lock

        def thunk() -> Dict[str, Any]:
            with lock:
                if campaign.campaign.finished:
                    raise BadRequest("campaign already ran all its rounds")
                summary = campaign.campaign.run_round()
                doc = campaign.snapshot()
                doc["round"] = {
                    "round": summary.index,
                    "allocations": list(summary.allocations),
                    "screens": summary.screens,
                    "tests": summary.tests,
                    "cases": summary.cases,
                    "true_positives": summary.true_positives,
                }
                return doc

        self._admit()
        try:
            async with campaign.lock:
                payload = await self._run_compute(thunk)
        finally:
            self._inflight -= 1
        return "/campaigns/{id}/round", json_response(payload), "computed"

    async def _campaign_delete(self, campaign_id: str) -> Tuple[str, Response, str]:
        campaign = self._require_campaign(campaign_id)
        async with campaign.lock:
            closed = self.campaigns.close(campaign.id)
        if closed:
            self._post(SessionEvent(campaign.id, "campaign_closed"))
        return (
            "/campaigns/{id}",
            json_response({"campaign_id": campaign.id, "closed": closed}),
            "computed",
        )

    # ------------------------------------------------------------------
    # session endpoints
    # ------------------------------------------------------------------
    def _require_session(self, session_id: str) -> ServeSession:
        serve_session = self.sessions.get(session_id)
        if serve_session is None:
            raise HttpError(404, f"no such session: {session_id}")
        serve_session.touch()
        return serve_session

    async def _session_create(self, request: Request) -> Tuple[str, Response, str]:
        req = SessionCreateRequest.from_payload(self._with_default_backend(request.json()))
        registry, lock = self.sessions, self._engine_lock

        def thunk() -> ServeSession:
            with lock:
                return registry.create(req)

        self._admit()
        try:
            serve_session = await self._run_compute(thunk)
        finally:
            self._inflight -= 1
        self._post(SessionEvent(serve_session.id, "created"))
        return "/sessions", json_response(serve_session.snapshot(), 201), "computed"

    def _session_get(self, session_id: str) -> Tuple[str, Response, str]:
        serve_session = self._require_session(session_id)
        return "/sessions/{id}", json_response(serve_session.snapshot()), "computed"

    async def _session_next_pool(self, session_id: str) -> Tuple[str, Response, str]:
        serve_session = self._require_session(session_id)
        lock = self._engine_lock

        def thunk() -> Dict[str, Any]:
            with lock:
                return serve_session.proposal_payload()

        self._admit()
        try:
            async with serve_session.lock:
                payload = await self._run_compute(thunk)
        finally:
            self._inflight -= 1
        return "/sessions/{id}/next-pool", json_response(payload), "computed"

    async def _session_results(
        self, request: Request, session_id: str
    ) -> Tuple[str, Response, str]:
        serve_session = self._require_session(session_id)
        body = request.json()
        if not isinstance(body, dict) or "outcomes" not in body:
            raise BadRequest("body must be an object with an 'outcomes' array")
        outcomes = body["outcomes"]
        if not isinstance(outcomes, list) or not outcomes or not all(
            isinstance(o, (bool, int, float)) for o in outcomes
        ):
            raise BadRequest(
                "outcomes must be a non-empty array of booleans or numbers"
            )
        unknown = sorted(set(body) - {"outcomes"})
        if unknown:
            raise BadRequest(f"unknown results field(s): {', '.join(unknown)}")
        lock = self._engine_lock

        def thunk() -> Dict[str, Any]:
            with lock:
                stepper = serve_session.stepper
                if stepper.done:
                    raise BadRequest("screen already finished")
                if stepper.pending_pools is None:
                    raise BadRequest(
                        "no pools outstanding; GET /sessions/{id}/next-pool first"
                    )
                try:
                    records = stepper.submit_outcomes(outcomes)
                except ValueError as exc:
                    raise BadRequest(str(exc)) from None
                snapshot = serve_session.snapshot()
                snapshot["records"] = [
                    {
                        "stage": r.stage,
                        "pool_mask": r.pool_mask,
                        "pool_size": r.pool_size,
                        "outcome": r.outcome
                        if isinstance(r.outcome, (bool, int, float))
                        else float(r.outcome),
                        "log_predictive": float(r.log_predictive),
                    }
                    for r in records
                ]
                return snapshot

        self._admit()
        try:
            async with serve_session.lock:
                payload = await self._run_compute(thunk)
        finally:
            self._inflight -= 1
        return "/sessions/{id}/results", json_response(payload), "computed"

    async def _session_delete(self, session_id: str) -> Tuple[str, Response, str]:
        serve_session = self._require_session(session_id)
        async with serve_session.lock:
            closed = self.sessions.close(serve_session.id)
        if closed:
            self._post(SessionEvent(serve_session.id, "closed"))
        return (
            "/sessions/{id}",
            json_response({"session_id": serve_session.id, "closed": closed}),
            "computed",
        )


async def serve(config: Optional[ServeConfig] = None, *, ready=None) -> None:
    """Run a server until cancelled (the ``repro serve`` entry point).

    *ready*, when given, is called with the bound ``(host, port)`` once
    the listener is up — the CLI prints it, tests grab the port.
    """
    server = ReproServer(config)
    try:
        host, port = await server.start()
        if ready is not None:
            ready(host, port)
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
