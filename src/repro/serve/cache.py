"""LRU result cache keyed by canonical request hashes.

Same eviction pattern as the engine's
:class:`~repro.engine.blockstore.BlockStore` — an :class:`OrderedDict`
moved-to-end on hit, popped from the front under pressure, with
hit/miss/eviction counters — but keyed by request digests and bounded
by entry count (server responses are small and uniform, so byte
accounting would be noise).  Thread-safe: the event loop reads it while
executor threads populate it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.engine.lockorder import OrderedLock

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of finished response payloads."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = OrderedLock("ResultCache._lock")
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, payload: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = payload
                return
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = payload

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Counters for ``/metrics``."""
        with self._lock:
            entries = len(self._entries)
        return {
            "entries": entries,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
