"""Serving-layer events on the engine's listener bus, and their reducer.

The server posts its own event vocabulary — request lifecycle, batch
execution, session lifecycle — on the **same** :class:`EventBus` the
engine emits job/stage/task/cache events on (PR 1's telemetry spine).
:class:`ServeMetricsListener` subscribes to that bus and folds the
combined stream into labelled :class:`~repro.obs.metrics.MetricsHub`
instruments; both ``GET /metrics`` documents — the JSON report and the
Prometheus text exposition — render from that one hub snapshot.
Nothing here polls; the bus pushes.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.engine.listener import EngineEvent, register_event_type
from repro.obs.metrics import HubMetricsListener, MetricsHub, bucket_quantile

__all__ = [
    "RequestEnd",
    "BatchExecuted",
    "SessionEvent",
    "LatencyHistogram",
    "ServeMetricsListener",
]


@dataclass
class RequestEnd(EngineEvent):
    """One HTTP request finished (any status).

    ``source`` says how the response was produced: ``computed`` (ran the
    workload), ``batched`` (rode another request's engine job),
    ``cache`` (served from the result cache), ``rejected``
    (backpressure/validation), or ``error``.
    """

    endpoint: str
    status: int
    wall_s: float
    source: str = "computed"


@dataclass
class BatchExecuted(EngineEvent):
    """The micro-batcher ran one coalesced job for ``waiters`` requests."""

    key: str
    waiters: int
    wall_s: float


@dataclass
class SessionEvent(EngineEvent):
    """Interactive-session lifecycle (``action``: created/closed/expired)."""

    session_id: str
    action: str


register_event_type(RequestEnd, "request_end")
register_event_type(BatchExecuted, "batch_executed")
register_event_type(SessionEvent, "session_event")

#: Latency bucket upper bounds, milliseconds (last bucket is +inf).
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)


class LatencyHistogram:
    """Fixed log-spaced latency histogram with percentile estimates."""

    __slots__ = ("counts", "count", "total_ms", "max_ms")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def observe(self, wall_s: float) -> None:
        ms = wall_s * 1000.0
        self.counts[bisect_left(LATENCY_BUCKETS_MS, ms)] += 1
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile estimate in ms.

        Linear within the winning bucket (the Prometheus
        ``histogram_quantile`` convention), clamped to the observed
        maximum so a lone sample reports itself rather than its bucket's
        ceiling.
        """
        return bucket_quantile(q, LATENCY_BUCKETS_MS, self.counts, self.count, self.max_ms)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": round(self.total_ms / self.count, 3) if self.count else 0.0,
            "p50_ms": round(self.quantile(0.50), 3),
            "p95_ms": round(self.quantile(0.95), 3),
            "p99_ms": round(self.quantile(0.99), 3),
            "max_ms": round(self.max_ms, 3),
            "buckets_ms": list(LATENCY_BUCKETS_MS),
            "bucket_counts": list(self.counts),
        }


def _latency_doc(child) -> Dict[str, Any]:
    """The legacy per-endpoint latency block, read from a hub histogram."""
    count = child.count
    return {
        "count": count,
        "mean_ms": round(child.sum / count, 3) if count else 0.0,
        "p50_ms": round(child.quantile(0.50), 3),
        "p95_ms": round(child.quantile(0.95), 3),
        "p99_ms": round(child.quantile(0.99), 3),
        "max_ms": round(child.max, 3),
        "buckets_ms": list(LATENCY_BUCKETS_MS),
        "bucket_counts": list(child.counts),
    }


class ServeMetricsListener(HubMetricsListener):
    """Folds the bus stream into hub instruments; snapshots ``/metrics``.

    Serve events become labelled ``repro_http_*`` / ``repro_serve_*``
    families on the hub (the server passes its context's hub, so engine
    registry rollups and the bus-only vocabularies folded by
    :class:`~repro.obs.metrics.HubMetricsListener` land in the same
    place).  :meth:`snapshot` then *reads back* from the hub to build
    the JSON ``/metrics`` document — one data path feeds both the JSON
    report and the Prometheus text exposition.
    """

    def __init__(self, hub: Optional[MetricsHub] = None) -> None:
        super().__init__(hub if hub is not None else MetricsHub())
        self._requests = self.hub.counter(
            "repro_http_requests_total",
            "HTTP requests by endpoint, status and response source",
            labels=("endpoint", "status", "source"),
        )
        self._duration = self.hub.histogram(
            "repro_http_request_duration_ms",
            "HTTP request wall time, milliseconds",
            labels=("endpoint",),
            buckets=LATENCY_BUCKETS_MS,
        )
        self._batch_jobs = self.hub.counter(
            "repro_serve_batch_jobs_total", "Coalesced micro-batch jobs executed"
        )
        self._batch_waiters = self.hub.counter(
            "repro_serve_batch_waiters_total",
            "Requests that rode a coalesced micro-batch job",
        )
        self._sessions = self.hub.counter(
            "repro_serve_session_events_total",
            "Interactive-session lifecycle events by action",
            labels=("action",),
        )

    # serve-side events -------------------------------------------------
    def on_request_end(self, event: RequestEnd) -> None:
        self._requests.labels(
            endpoint=event.endpoint, status=event.status, source=event.source
        ).inc()
        self._duration.labels(endpoint=event.endpoint).observe(event.wall_s * 1000.0)

    def on_batch_executed(self, event: BatchExecuted) -> None:
        self._batch_jobs.inc()
        self._batch_waiters.inc(event.waiters)

    def on_session_event(self, event: SessionEvent) -> None:
        self._sessions.labels(action=event.action).inc()

    # export -------------------------------------------------------------
    def _engine_doc(self) -> Dict[str, Any]:
        """Engine totals from the registry-fed ``repro_engine_*`` families."""
        jobs = tasks = 0
        job_wall_s = 0.0
        fam = self.hub.get("repro_engine_jobs_total")
        if fam is not None:
            jobs = int(sum(child.value for _, child in fam.series()))
        fam = self.hub.get("repro_engine_tasks_total")
        if fam is not None:
            tasks = int(sum(child.value for _, child in fam.series()))
        fam = self.hub.get("repro_engine_job_seconds")
        if fam is not None:
            job_wall_s = sum(child.sum for _, child in fam.series())
        return {"jobs": jobs, "tasks": tasks, "job_wall_s": round(job_wall_s, 6)}

    def snapshot(self) -> Dict[str, Any]:
        endpoints: Dict[str, Any] = {}
        per_endpoint: Dict[str, Dict[str, Any]] = {}
        for labels, child in self._requests.series():
            stats = per_endpoint.setdefault(
                labels["endpoint"], {"requests": 0, "by_status": {}, "by_source": {}}
            )
            n = int(child.value)
            stats["requests"] += n
            status, source = labels["status"], labels["source"]
            stats["by_status"][status] = stats["by_status"].get(status, 0) + n
            stats["by_source"][source] = stats["by_source"].get(source, 0) + n
        for name in sorted(per_endpoint):
            stats = per_endpoint[name]
            endpoints[name] = {
                "requests": stats["requests"],
                "by_status": stats["by_status"],
                "by_source": stats["by_source"],
                "latency": _latency_doc(self._duration.labels(endpoint=name)),
            }
        jobs = int(self._batch_jobs.value)
        waiters = int(self._batch_waiters.value)
        return {
            "endpoints": endpoints,
            "batcher": {
                "jobs": jobs,
                "waiters": waiters,
                "batching_ratio": round(waiters / jobs, 3) if jobs else 0.0,
            },
            "sessions": {
                labels["action"]: int(child.value)
                for labels, child in self._sessions.series()
            },
            "engine": self._engine_doc(),
        }


def request_totals(listener: ServeMetricsListener) -> List[str]:
    """Flat endpoint summary lines (handy for logs/tests)."""
    snap = listener.snapshot()
    return [
        f"{name}: {info['requests']} requests, p95={info['latency']['p95_ms']}ms"
        for name, info in snap["endpoints"].items()
    ]
