"""Serving-layer events on the engine's listener bus, and their reducer.

The server posts its own event vocabulary — request lifecycle, batch
execution, session lifecycle — on the **same** :class:`EventBus` the
engine emits job/stage/task/cache events on (PR 1's telemetry spine).
:class:`ServeMetricsListener` subscribes to that bus and folds the
combined stream into what ``GET /metrics`` reports: per-endpoint
request counts and latency histograms, batching counters, engine job
totals.  Nothing here polls; the bus pushes.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, List

from repro.engine.listener import (
    EngineEvent,
    EngineListener,
    JobEnd,
    TaskEnd,
    register_event_type,
)

__all__ = [
    "RequestEnd",
    "BatchExecuted",
    "SessionEvent",
    "LatencyHistogram",
    "ServeMetricsListener",
]


@dataclass
class RequestEnd(EngineEvent):
    """One HTTP request finished (any status).

    ``source`` says how the response was produced: ``computed`` (ran the
    workload), ``batched`` (rode another request's engine job),
    ``cache`` (served from the result cache), ``rejected``
    (backpressure/validation), or ``error``.
    """

    endpoint: str
    status: int
    wall_s: float
    source: str = "computed"


@dataclass
class BatchExecuted(EngineEvent):
    """The micro-batcher ran one coalesced job for ``waiters`` requests."""

    key: str
    waiters: int
    wall_s: float


@dataclass
class SessionEvent(EngineEvent):
    """Interactive-session lifecycle (``action``: created/closed/expired)."""

    session_id: str
    action: str


register_event_type(RequestEnd, "request_end")
register_event_type(BatchExecuted, "batch_executed")
register_event_type(SessionEvent, "session_event")

#: Latency bucket upper bounds, milliseconds (last bucket is +inf).
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)


class LatencyHistogram:
    """Fixed log-spaced latency histogram with percentile estimates."""

    __slots__ = ("counts", "count", "total_ms", "max_ms")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def observe(self, wall_s: float) -> None:
        ms = wall_s * 1000.0
        self.counts[bisect_left(LATENCY_BUCKETS_MS, ms)] += 1
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile in ms."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                if i < len(LATENCY_BUCKETS_MS):
                    return float(LATENCY_BUCKETS_MS[i])
                return self.max_ms
        return self.max_ms

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": round(self.total_ms / self.count, 3) if self.count else 0.0,
            "p50_ms": self.quantile(0.50),
            "p95_ms": self.quantile(0.95),
            "p99_ms": self.quantile(0.99),
            "max_ms": round(self.max_ms, 3),
            "buckets_ms": list(LATENCY_BUCKETS_MS),
            "bucket_counts": list(self.counts),
        }


class _EndpointStats:
    __slots__ = ("requests", "by_status", "by_source", "latency")

    def __init__(self) -> None:
        self.requests = 0
        self.by_status: Dict[str, int] = {}
        self.by_source: Dict[str, int] = {}
        self.latency = LatencyHistogram()


class ServeMetricsListener(EngineListener):
    """Folds the bus stream into the ``/metrics`` document."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _EndpointStats] = {}
        self._batch_jobs = 0
        self._batch_waiters = 0
        self._sessions: Dict[str, int] = {}
        self._engine_jobs = 0
        self._engine_job_wall_s = 0.0
        self._engine_tasks = 0

    # serve-side events -------------------------------------------------
    def on_request_end(self, event: RequestEnd) -> None:
        with self._lock:
            stats = self._endpoints.get(event.endpoint)
            if stats is None:
                stats = self._endpoints[event.endpoint] = _EndpointStats()
            stats.requests += 1
            status = str(event.status)
            stats.by_status[status] = stats.by_status.get(status, 0) + 1
            stats.by_source[event.source] = stats.by_source.get(event.source, 0) + 1
            stats.latency.observe(event.wall_s)

    def on_batch_executed(self, event: BatchExecuted) -> None:
        with self._lock:
            self._batch_jobs += 1
            self._batch_waiters += event.waiters

    def on_session_event(self, event: SessionEvent) -> None:
        with self._lock:
            self._sessions[event.action] = self._sessions.get(event.action, 0) + 1

    # engine events (PR 1 vocabulary) -----------------------------------
    def on_job_end(self, event: JobEnd) -> None:
        with self._lock:
            self._engine_jobs += 1
            self._engine_job_wall_s += event.wall_s

    def on_task_end(self, event: TaskEnd) -> None:
        with self._lock:
            self._engine_tasks += 1

    # export -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            endpoints: Dict[str, Any] = {}
            for name, stats in sorted(self._endpoints.items()):
                endpoints[name] = {
                    "requests": stats.requests,
                    "by_status": dict(stats.by_status),
                    "by_source": dict(stats.by_source),
                    "latency": stats.latency.snapshot(),
                }
            waiters, jobs = self._batch_waiters, self._batch_jobs
            return {
                "endpoints": endpoints,
                "batcher": {
                    "jobs": jobs,
                    "waiters": waiters,
                    "batching_ratio": round(waiters / jobs, 3) if jobs else 0.0,
                },
                "sessions": dict(self._sessions),
                "engine": {
                    "jobs": self._engine_jobs,
                    "tasks": self._engine_tasks,
                    "job_wall_s": round(self._engine_job_wall_s, 6),
                },
            }


def request_totals(listener: ServeMetricsListener) -> List[str]:
    """Flat endpoint summary lines (handy for logs/tests)."""
    snap = listener.snapshot()
    return [
        f"{name}: {info['requests']} requests, p95={info['latency']['p95_ms']}ms"
        for name, info in snap["endpoints"].items()
    ]
