"""repro.serve — asyncio serving layer for the SBGT engine.

Stdlib-only HTTP front end over the dataflow engine: request
micro-batching, an LRU result cache, an interactive session registry,
and ``/metrics`` fed by the engine's listener bus.  Entry point:
``python -m repro serve``.
"""

from repro.serve.app import ReproServer, ServeConfig, serve
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ResultCache
from repro.serve.events import (
    BatchExecuted,
    LatencyHistogram,
    RequestEnd,
    ServeMetricsListener,
    SessionEvent,
)
from repro.serve.http import HttpError, HttpServer, Request, Response, json_response
from repro.serve.protocol import (
    AssaySpec,
    BadRequest,
    CalculatorRequest,
    ScreenRequest,
    SessionCreateRequest,
    SurveilRequest,
)
from repro.serve.sessions import (
    CampaignRegistry,
    CampaignSession,
    ServeSession,
    SessionLimitError,
    SessionRegistry,
)

__all__ = [
    "ReproServer",
    "ServeConfig",
    "serve",
    "MicroBatcher",
    "ResultCache",
    "RequestEnd",
    "BatchExecuted",
    "SessionEvent",
    "LatencyHistogram",
    "ServeMetricsListener",
    "HttpError",
    "HttpServer",
    "Request",
    "Response",
    "json_response",
    "AssaySpec",
    "BadRequest",
    "CalculatorRequest",
    "ScreenRequest",
    "SurveilRequest",
    "SessionCreateRequest",
    "ServeSession",
    "SessionRegistry",
    "SessionLimitError",
    "CampaignRegistry",
    "CampaignSession",
]
