"""Request micro-batching: coalesce identical concurrent work.

Sequential Bayesian screens are deterministic given (scenario, policy,
options, seed), so two concurrent requests with the same canonical key
*must* produce the same payload — running the engine job twice is pure
waste.  The :class:`MicroBatcher` runs it once: the first arrival for a
key becomes the **leader**, waits out a short collection window (letting
the rest of a traffic burst pile on), executes the thunk in a worker
thread, and fans the result back to every waiter through one shared
future.  Requests arriving while the job is already executing still
attach to it.

This is single-flight with a window — the same trick a web calculator
front end needs when a classroom of epidemiologists all press
"compute" on the default parameters at once.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Awaitable, Callable, Dict, Optional

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Key-coalescing executor front end.

    Parameters
    ----------
    run_in_executor:
        Async callable taking a zero-arg sync thunk and returning its
        result off the event loop (the app passes a bound
        ``loop.run_in_executor`` wrapper).
    window_s:
        Leader's collection pause before dispatching.  ``0`` disables
        the window (still single-flight).
    on_batch:
        Optional callback ``(key, waiters, wall_s)`` fired after each
        executed job (the app posts a ``BatchExecuted`` bus event).
    """

    def __init__(
        self,
        run_in_executor: Callable[[Callable[[], Any]], Awaitable[Any]],
        window_s: float = 0.002,
        on_batch: Optional[Callable[[str, int, float], None]] = None,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self._run = run_in_executor
        self.window_s = float(window_s)
        self._on_batch = on_batch
        self._inflight: Dict[str, asyncio.Future] = {}
        self._waiters: Dict[str, int] = {}
        # counters for /metrics and the load benchmark
        self.requests = 0
        self.jobs = 0
        self.coalesced = 0

    @property
    def batching_ratio(self) -> float:
        """Requests served per engine job (>= 1; higher is better)."""
        return self.requests / self.jobs if self.jobs else 0.0

    async def submit(self, key: str, thunk: Callable[[], Any]) -> Any:
        """Return the result of ``thunk()``, deduplicated by *key*.

        Every concurrent caller with the same key gets the same result
        object (payloads are treated as immutable).  If the job raises,
        all waiters see the exception.
        """
        self.requests += 1
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            self._waiters[key] = self._waiters.get(key, 1) + 1
            # shield: one waiter's cancellation must not kill the shared job
            return await asyncio.shield(existing)

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._waiters[key] = 1
        self.jobs += 1
        t0 = time.perf_counter()
        try:
            if self.window_s > 0.0:
                await asyncio.sleep(self.window_s)
            result = await self._run(thunk)
        except BaseException as exc:
            waiters = self._waiters.pop(key, 1)
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(exc)
            # the leader re-raises through the future so the exception
            # is always retrieved even with zero extra waiters
            return await future
        else:
            waiters = self._waiters.pop(key, 1)
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(result)
            if self._on_batch is not None:
                self._on_batch(key, waiters, time.perf_counter() - t0)
            return await future

    def snapshot(self) -> Dict[str, Any]:
        """Counters for ``/metrics``."""
        return {
            "requests": self.requests,
            "jobs": self.jobs,
            "coalesced": self.coalesced,
            "inflight_keys": len(self._inflight),
            "batching_ratio": round(self.batching_ratio, 3),
        }
