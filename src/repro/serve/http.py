"""Minimal asyncio HTTP/1.1 plumbing (stdlib only).

``asyncio.start_server`` + a hand-rolled request parser: request line,
headers, ``Content-Length``-framed body, keep-alive by default.  This
is deliberately the smallest HTTP surface the JSON API needs — no
chunked encoding, no TLS, no multipart — because the repo's hard
constraint is *no third-party runtime dependencies*.  Anything fancy
belongs in a reverse proxy in front.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["HttpError", "Request", "Response", "json_response", "HttpServer"]

MAX_HEADER_BYTES = 16 * 1024
DEFAULT_MAX_BODY = 1 << 20  # 1 MiB of JSON is already an abusive request

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Protocol-level failure carrying the status to send back."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """Decode the body as JSON (empty body → ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from None


@dataclass
class Response:
    """What a handler returns; serialized by the connection loop."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self, keep_alive: bool) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = {
            "Content-Type": self.content_type,
            "Content-Length": str(len(self.body)),
            "Connection": "keep-alive" if keep_alive else "close",
            **self.headers,
        }
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


def json_response(
    payload: Any,
    status: int = 200,
    headers: Optional[Dict[str, str]] = None,
) -> Response:
    """JSON body in the diff-stable wire format (sorted keys, 2-space)."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body, headers=dict(headers or {}))


Handler = Callable[[Request], Awaitable[Response]]


async def _read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    return head


def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str], Dict[str, str]]:
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:
        raise HttpError(400, "undecodable request head") from None
    request_line, *header_lines = text.split("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        if ":" not in line:
            raise HttpError(400, f"malformed header line: {line!r}")
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, query, headers


async def _read_body(
    reader: asyncio.StreamReader, headers: Dict[str, str], max_body: int
) -> bytes:
    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpError(501, "chunked transfer encoding is not supported")
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {raw!r}") from None
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > max_body:
        raise HttpError(413, f"request body exceeds {max_body} bytes")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise HttpError(400, "truncated request body") from None


class HttpServer:
    """Keep-alive asyncio HTTP server delegating to one async handler."""

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body: int = DEFAULT_MAX_BODY,
    ) -> None:
        self._handler = handler
        self.host = host
        self.port = port
        self.max_body = max_body
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port,
            limit=MAX_HEADER_BYTES + DEFAULT_MAX_BODY,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await _read_head(reader)
                    if head is None:
                        break
                    method, path, query, headers = _parse_head(head)
                    body = await _read_body(reader, headers, self.max_body)
                except HttpError as exc:
                    writer.write(
                        json_response({"error": exc.message}, exc.status).encode(False)
                    )
                    await writer.drain()
                    break

                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                request = Request(method, path, query, headers, body)
                try:
                    response = await self._handler(request)
                except HttpError as exc:
                    response = json_response({"error": exc.message}, exc.status)
                except Exception as exc:  # noqa: BLE001 - handler bugs must not kill the server
                    response = json_response(
                        {"error": f"internal error: {type(exc).__name__}: {exc}"}, 500
                    )
                writer.write(response.encode(keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
