"""JSON payload shapes shared by the CLI and the serving layer.

``python -m repro screen --json`` / ``calculator --json`` and the
corresponding ``repro serve`` endpoints emit the **same** payloads, so a
CLI run and a server response are directly diffable.  Everything here is
plain-JSON-serializable (no NumPy scalars) and deterministic given the
request parameters and seed.

Also home to the string factories the CLI and server share:
:func:`make_policy` parses the policy mini-language (``bha``,
``lookahead-2``, ``dorfman-4``, ``array-3x4``, ``hybrid-6``, …) and
:func:`make_model` builds a response model from assay parameters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.bayes.dilution import (
    BinaryErrorModel,
    DilutionErrorModel,
    PerfectTest,
    ResponseModel,
)
from repro.halving.hybrid import HybridPolicy
from repro.halving.policy import (
    ArrayTestingPolicy,
    BHAPolicy,
    DorfmanPolicy,
    IndividualTestingPolicy,
    InformationGainPolicy,
    LookaheadPolicy,
    SelectionPolicy,
)
from repro.workflows.calculator import CalculatorEntry
from repro.workflows.classify import ScreenResult

__all__ = [
    "make_policy",
    "make_model",
    "make_posterior",
    "canonical_json",
    "request_digest",
    "screen_payload",
    "calculator_payload",
    "calculator_entry_dict",
    "surveil_payload",
    "dump_payload",
]

POLICY_HELP = "bha, lookahead-2, infogain, dorfman-4, array-3x4, hybrid, individual"
BACKEND_HELP = "dense, sparse, particle"


def make_policy(name: str) -> SelectionPolicy:
    """Build a selection policy from its CLI/API spelling.

    Raises :class:`ValueError` for an unknown spec (callers map this to
    an argparse error or an HTTP 400 as appropriate).
    """
    try:
        if name == "bha":
            return BHAPolicy()
        if name.startswith("lookahead-"):
            return LookaheadPolicy(int(name.split("-", 1)[1]))
        if name == "infogain":
            return InformationGainPolicy()
        if name.startswith("dorfman-"):
            return DorfmanPolicy(int(name.split("-", 1)[1]))
        if name.startswith("array-"):
            rows, cols = name.split("-", 1)[1].split("x")
            return ArrayTestingPolicy(int(rows), int(cols))
        if name == "hybrid":
            return HybridPolicy()
        if name.startswith("hybrid-"):
            return HybridPolicy(int(name.split("-", 1)[1]))
        if name == "individual":
            return IndividualTestingPolicy()
    except (ValueError, TypeError) as exc:
        raise ValueError(f"malformed policy spec {name!r} (try: {POLICY_HELP})") from exc
    raise ValueError(f"unknown policy {name!r} (try: {POLICY_HELP})")


def make_model(
    assay: str = "dilution",
    sensitivity: float = 0.98,
    specificity: float = 0.995,
    dilution: float = 0.3,
) -> ResponseModel:
    """Build a response model from flat assay parameters."""
    if assay == "perfect":
        return PerfectTest()
    if assay == "binary":
        return BinaryErrorModel(sensitivity, specificity)
    if assay == "dilution":
        return DilutionErrorModel(sensitivity, specificity, dilution)
    raise ValueError(f"unknown assay {assay!r} (choose perfect, binary, dilution)")


def make_posterior(
    backend: str = "dense",
    *,
    prior,
    ctx=None,
    num_blocks: int = 0,
    max_positives: Optional[int] = None,
    sparse_floor: float = 1e-9,
    max_states: int = 1 << 17,
    num_particles: int = 2048,
    ess_threshold: float = 0.5,
    seed: int = 0,
):
    """Build a :class:`~repro.sbgt.backend.PosteriorBackend` by name.

    The posterior twin of :func:`make_policy` / :func:`make_model`:
    ``"dense"`` is the distributed lattice (needs an engine ``ctx``),
    ``"sparse"`` the driver-resident above-floor representation,
    ``"particle"`` the SMC cloud.  Every returned backend carries a
    ``log_discarded_prior`` attribute (−inf when the support is exact).
    Raises :class:`ValueError` for an unknown name (callers map this to
    an argparse error or an HTTP 400 as appropriate).
    """
    if backend == "dense":
        # Deferred imports: repro.sbgt pulls this module back in for the
        # session's backend dispatch.
        from repro.sbgt.distributed_lattice import DistributedLattice

        if ctx is None:
            raise ValueError("the dense backend needs an engine Context (ctx)")
        if max_positives is not None:
            lattice, log_disc = DistributedLattice.from_restricted_prior(
                ctx, prior, max_positives, num_blocks
            )
        else:
            lattice = DistributedLattice.from_prior(ctx, prior, num_blocks)
            log_disc = float("-inf")
        lattice.log_discarded_prior = log_disc
        return lattice
    if backend == "sparse":
        from repro.sbgt.sparse import SparsePosterior

        return SparsePosterior.from_prior(
            prior, floor=sparse_floor, max_states=max_states, max_positives=max_positives
        )
    if backend == "particle":
        from repro.sbgt.particle import ParticlePosterior

        return ParticlePosterior(
            prior, num_particles=num_particles, rng=seed, ess_threshold=ess_threshold
        )
    raise ValueError(f"unknown posterior backend {backend!r} (try: {BACKEND_HELP})")


# ----------------------------------------------------------------------
# canonical hashing (the result cache / micro-batcher coalescing key)
# ----------------------------------------------------------------------
def canonical_json(obj: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace jitter."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def request_digest(kind: str, params: Mapping[str, Any]) -> str:
    """Canonical request hash — equal requests collide by construction."""
    text = kind + "\n" + canonical_json(dict(params))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# payload builders
# ----------------------------------------------------------------------
def _py(value: Any) -> Any:
    """NumPy scalar → native (json round-trips floats via repr exactly)."""
    if hasattr(value, "item"):
        return value.item()
    return value


def screen_payload(
    result: ScreenResult,
    request: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The one-shot screen payload (CLI ``--json`` == server body)."""
    summary = {k: _py(v) for k, v in result.summary().items()}
    return {
        "kind": "screen",
        "request": dict(request or {}),
        "summary": summary,
        "classification": {
            "statuses": [s.name.lower() for s in result.report.statuses],
            "marginals": [float(m) for m in result.report.marginals],
        },
        "truth": {
            "mask": int(result.cohort.truth_mask),
            "positives": result.cohort.positives(),
        },
    }


def calculator_entry_dict(entry: CalculatorEntry) -> Dict[str, Any]:
    row = {k: _py(v) for k, v in dataclasses.asdict(entry).items()}
    row["expected_savings"] = float(entry.expected_savings)
    row["verdict"] = "pool" if entry.pooling_recommended else "individual"
    return row


def calculator_payload(
    entries: Sequence[CalculatorEntry],
    request: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The decision-table payload (CLI ``--json`` == server body)."""
    return {
        "kind": "calculator",
        "request": dict(request or {}),
        "entries": [calculator_entry_dict(e) for e in entries],
    }


def surveil_payload(
    result,
    request: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The multi-site campaign payload (CLI ``--json`` == server body).

    *result* is a :class:`~repro.surveil.campaign.CampaignResult`.
    Deterministic given the request parameters and seed: wall-clock
    times are deliberately excluded (see ``CampaignResult.round_rows``).
    """
    return {
        "kind": "surveil",
        "request": dict(request or {}),
        "summary": {k: _py(v) for k, v in result.summary().items()},
        "sites": result.sites,
        "rounds": result.round_rows(),
    }


def dump_payload(payload: Mapping[str, Any]) -> str:
    """The exact wire/stdout text both emitters use (diff-stable)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
