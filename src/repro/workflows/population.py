"""Population-scale screening: many cohorts, engine-parallel.

A city-scale program doesn't build one 10,000-person lattice — it splits
the population into pooling cohorts (the regime where exact Bayesian
inference is cheap) and runs the cohorts concurrently.  This workflow
expresses exactly that on the dataflow engine: one task per cohort, each
task running the full serial screen, results reduced to program-level
statistics.  It is the second axis of SBGT's scalability (R4 covers the
within-lattice axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.bayes.dilution import ResponseModel
from repro.bayes.priors import PriorSpec
from repro.engine.context import Context
from repro.halving.policy import SelectionPolicy
from repro.simulate.population import Cohort
from repro.util.rng import RngLike, as_rng
from repro.workflows.classify import ScreenResult, run_screen
from repro.workflows.options import ScreenOptions

__all__ = ["PopulationResult", "screen_population", "split_into_cohorts"]


def split_into_cohorts(
    risks: np.ndarray, cohort_size: int, sort_by_risk: bool = True
) -> List[PriorSpec]:
    """Partition a population's risk vector into pooling cohorts.

    With ``sort_by_risk`` the population is risk-sorted first, so cohorts
    are internally homogeneous — mixing one high-risk person into a
    low-risk pool wrecks that pool's halving efficiency, which is why
    real programs stratify.
    """
    risks = np.asarray(risks, dtype=np.float64)
    if risks.ndim != 1 or risks.size == 0:
        raise ValueError("risks must be a non-empty 1-D array")
    if cohort_size < 1:
        raise ValueError("cohort_size must be >= 1")
    if sort_by_risk:
        risks = np.sort(risks)
    return [
        PriorSpec(risks[lo : lo + cohort_size])
        for lo in range(0, risks.size, cohort_size)
    ]


@dataclass
class PopulationResult:
    """Aggregated outcome of a whole program run."""

    screens: List[ScreenResult]

    @property
    def total_individuals(self) -> int:
        return sum(s.cohort.n_items for s in self.screens)

    @property
    def total_tests(self) -> int:
        return sum(s.efficiency.num_tests for s in self.screens)

    @property
    def tests_per_individual(self) -> float:
        n = self.total_individuals
        return self.total_tests / n if n else 0.0

    @property
    def max_stages(self) -> int:
        """Program turnaround: cohorts run concurrently, so the slowest
        cohort's stage count is the wall-clock bound."""
        return max((s.stages_used for s in self.screens), default=0)

    @property
    def overall_accuracy(self) -> float:
        total = self.total_individuals
        if total == 0:
            return 1.0
        correct = sum(
            s.confusion.true_positive + s.confusion.true_negative for s in self.screens
        )
        return correct / total

    def found_positives(self) -> List[int]:
        """Global indices of individuals called positive (cohort-major)."""
        out = []
        offset = 0
        for s in self.screens:
            out.extend(offset + i for i in s.report.positives())
            offset += s.cohort.n_items
        return out


def screen_population(
    ctx: Context,
    priors: Sequence[PriorSpec],
    model: ResponseModel,
    policy_factory: Callable[[], SelectionPolicy],
    rng: RngLike = None,
    cohorts: Optional[Sequence[Cohort]] = None,
    max_stages: int = 60,
    positive_threshold: float = 0.99,
    negative_threshold: float = 0.01,
) -> PopulationResult:
    """Screen every cohort as one engine task; collect program stats.

    Each cohort gets an independent RNG stream derived from *rng*, so
    the program is reproducible regardless of task scheduling order.
    """
    if not priors:
        raise ValueError("at least one cohort prior required")
    base = as_rng(rng)
    seeds = [int(s) for s in base.integers(0, 2**63 - 1, size=len(priors))]
    if cohorts is None:
        cohort_list: List[Optional[Cohort]] = [None] * len(priors)
    else:
        if len(cohorts) != len(priors):
            raise ValueError("cohorts must match priors one-to-one")
        cohort_list = list(cohorts)

    jobs = list(zip(priors, seeds, cohort_list))

    def run_one(job) -> ScreenResult:
        prior, seed, cohort = job
        return run_screen(
            prior,
            model,
            policy_factory(),
            rng=seed,
            cohort=cohort,
            options=ScreenOptions(
                max_stages=max_stages,
                positive_threshold=positive_threshold,
                negative_threshold=negative_threshold,
            ),
        )

    results = ctx.parallelize(jobs, min(len(jobs), ctx.default_parallelism * 4)).map(
        run_one
    ).collect()
    return PopulationResult(screens=results)
