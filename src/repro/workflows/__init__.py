"""End-to-end workflows: screens, surveillance campaigns, the calculator."""

from repro.workflows.classify import (
    ScreenResult,
    run_screen,
    run_screen_from_space,
    screen_with_backend,
)
from repro.workflows.options import ScreenOptions
from repro.workflows.surveillance import SurveillanceResult, run_surveillance
from repro.workflows.calculator import CalculatorEntry, pooling_calculator
from repro.workflows.population import (
    PopulationResult,
    screen_population,
    split_into_cohorts,
)

__all__ = [
    "ScreenResult",
    "ScreenOptions",
    "run_screen",
    "run_screen_from_space",
    "screen_with_backend",
    "SurveillanceResult",
    "run_surveillance",
    "CalculatorEntry",
    "pooling_calculator",
    "PopulationResult",
    "screen_population",
    "split_into_cohorts",
]
