"""The sequential classification loop (serial reference driver).

One *screen* classifies a cohort: at each stage the policy proposes
pools, the virtual lab assays them, the posterior conditions on the
outcomes, and individuals crossing the marginal thresholds are settled.
The loop ends when everyone is classified or the stage budget runs out.

:class:`SBGTSession` (:mod:`repro.sbgt.session`) runs the same protocol
against the distributed lattice; both produce a :class:`ScreenResult`,
so every accuracy/efficiency experiment can compare them row for row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bayes.dilution import ResponseModel
from repro.bayes.posterior import ClassificationReport, Posterior
from repro.bayes.priors import PriorSpec
from repro.halving.policy import SelectionPolicy
from repro.metrics.classification import ConfusionCounts, evaluate_classification
from repro.metrics.efficiency import EfficiencyReport, efficiency_report
from repro.simulate.population import Cohort, make_cohort
from repro.simulate.testing import TestLab
from repro.util.rng import RngLike, as_rng
from repro.workflows.options import ScreenOptions, resolve_screen_options

__all__ = [
    "ScreenResult",
    "run_screen",
    "run_screen_from_space",
    "screen_with_backend",
]


@dataclass
class ScreenResult:
    """Everything a finished screen produced."""

    cohort: Cohort
    report: ClassificationReport
    confusion: ConfusionCounts
    efficiency: EfficiencyReport
    posterior: Posterior
    stages_used: int
    exhausted_budget: bool

    @property
    def accuracy(self) -> float:
        return self.confusion.accuracy

    @property
    def tests_per_individual(self) -> float:
        return self.efficiency.tests_per_individual

    def summary(self) -> dict:
        """Flat dict of the headline numbers (for tables / JSON dumps)."""
        return {
            "n_items": self.cohort.n_items,
            "true_positives_present": self.cohort.n_positive,
            "called_positive": len(self.report.positives()),
            "undetermined": len(self.report.undetermined()),
            "tests": self.efficiency.num_tests,
            "tests_per_individual": self.tests_per_individual,
            "stages": self.stages_used,
            "accuracy": self.accuracy,
            "sensitivity": self.confusion.sensitivity,
            "specificity": self.confusion.specificity,
            "exhausted_budget": self.exhausted_budget,
        }


def _eligible_mask(report: ClassificationReport) -> int:
    return report.undetermined_mask()


def _loss_final_report(marginals: np.ndarray, stopping_rule) -> ClassificationReport:
    """Terminal report when a loss-based rule fires: every individual
    gets their loss-optimal call (no undetermined left)."""
    from repro.bayes.posterior import Classification

    calls = stopping_rule.classify_now(marginals)
    statuses = tuple(
        Classification.POSITIVE if positive else Classification.NEGATIVE
        for positive in calls
    )
    return ClassificationReport(marginals=np.asarray(marginals), statuses=statuses)


def run_screen(
    prior: PriorSpec,
    model: ResponseModel,
    policy: SelectionPolicy,
    rng: RngLike = None,
    cohort: Optional[Cohort] = None,
    options: Optional[ScreenOptions] = None,
    stopping_rule=None,
    **legacy,
) -> ScreenResult:
    """Run one complete sequential screen.

    Parameters
    ----------
    prior, model, policy:
        The Bayesian model and the test-selection rule.
    rng:
        Drives truth draw (when *cohort* is None) and assay noise.
    cohort:
        Fixed ground truth; drawn from the prior when omitted.
    options:
        The :class:`~repro.workflows.options.ScreenOptions` bundle
        (thresholds, stage budget, pruning, entropy tracking).  The old
        loose keywords (``positive_threshold``, ``negative_threshold``,
        ``max_stages``, ``prune_epsilon``, ``track_entropy``) remain as
        deprecated aliases.
    stopping_rule:
        Optional :class:`~repro.halving.stopping.LossBasedStopping`:
        the screen also ends when residual misclassification risk drops
        below the cost of testing further, with every individual given
        their loss-optimal call (no undetermined statuses).
    """
    opts = resolve_screen_options(options, legacy, "run_screen")
    positive_threshold, negative_threshold = opts.positive_threshold, opts.negative_threshold
    max_stages, prune_epsilon = opts.max_stages, opts.prune_epsilon
    track_entropy = opts.track_entropy
    gen = as_rng(rng)
    if cohort is None:
        cohort = make_cohort(prior, gen)
    elif cohort.prior is not prior and cohort.prior.n_items != prior.n_items:
        raise ValueError("cohort does not match the prior's cohort size")

    lab = TestLab(model, cohort.truth_mask, gen)
    posterior = Posterior.from_prior(prior, model, track_entropy=track_entropy)
    policy.reset()

    stages_used = 0
    exhausted = False
    report = posterior.classify(positive_threshold, negative_threshold)
    while not report.all_classified:
        if stopping_rule is not None and stopping_rule.should_stop(report.marginals):
            report = _loss_final_report(report.marginals, stopping_rule)
            break
        if stages_used >= max_stages:
            exhausted = True
            break
        eligible = _eligible_mask(report)
        pools = policy.select(posterior, eligible)
        if not pools:
            raise RuntimeError(f"policy {policy.name} proposed no pools")
        posterior.begin_stage()
        stages_used += 1
        for pool in pools:
            outcome = lab.run(pool)
            posterior.update(pool, outcome)
        if prune_epsilon > 0.0:
            posterior.prune(prune_epsilon)
        report = posterior.classify(positive_threshold, negative_threshold)

    confusion = evaluate_classification(report, cohort.truth_mask)
    eff = efficiency_report(
        cohort.n_items, lab.stats.num_tests, stages_used, lab.stats.num_samples_used
    )
    return ScreenResult(
        cohort=cohort,
        report=report,
        confusion=confusion,
        efficiency=eff,
        posterior=posterior,
        stages_used=stages_used,
        exhausted_budget=exhausted,
    )


def screen_with_backend(
    prior: PriorSpec,
    model: ResponseModel,
    policy: SelectionPolicy,
    backend: str = "dense",
    rng: RngLike = None,
    cohort: Optional[Cohort] = None,
    options: Optional[ScreenOptions] = None,
    stopping_rule=None,
) -> ScreenResult:
    """Run one screen on the named posterior backend.

    ``"dense"`` runs the serial exact reference (:func:`run_screen`);
    ``"sparse"`` / ``"particle"`` run the same protocol against a
    driver-local approximate :class:`~repro.sbgt.session.SBGTSession`
    (no engine context needed), which is what lifts cohorts past the
    dense ``2^N`` wall.  All callers that fan screens out over backends
    — the calculator, longitudinal surveillance, multi-site campaigns —
    dispatch through here so backend semantics stay in one place.
    """
    if backend == "dense":
        return run_screen(
            prior, model, policy, rng=rng, cohort=cohort,
            options=options, stopping_rule=stopping_rule,
        )
    # Deferred import: repro.sbgt reaches back into workflows for payloads.
    from repro.sbgt.config import SBGTConfig
    from repro.sbgt.session import SBGTSession

    session = SBGTSession(None, prior, model, SBGTConfig(backend=backend))
    try:
        return session.run_screen(
            policy, rng=rng, cohort=cohort,
            stopping_rule=stopping_rule, options=options,
        )
    finally:
        session.close()


def run_screen_from_space(
    space,
    model: ResponseModel,
    policy: SelectionPolicy,
    rng: RngLike = None,
    truth_mask: Optional[int] = None,
    options: Optional[ScreenOptions] = None,
    **legacy,
) -> ScreenResult:
    """Run a screen whose prior is an arbitrary state space.

    This is the entry point for *correlated* priors (e.g.
    :class:`~repro.bayes.correlated.HouseholdPrior`), which cannot be
    expressed as a per-individual risk vector.  Ground truth is drawn
    from the prior distribution itself when *truth_mask* is omitted.
    The returned result's ``cohort.prior`` carries the prior's
    *marginals* (a summary — the full dependence structure lives in the
    posterior's state space).
    """
    from repro.bayes.posterior import Posterior
    from repro.lattice.ops import marginals as space_marginals
    from repro.simulate.population import draw_truth_from_space

    opts = resolve_screen_options(options, legacy, "run_screen_from_space")
    positive_threshold, negative_threshold = opts.positive_threshold, opts.negative_threshold
    max_stages, prune_epsilon = opts.max_stages, opts.prune_epsilon
    track_entropy = opts.track_entropy
    gen = as_rng(rng)
    if truth_mask is None:
        truth_mask = draw_truth_from_space(space, gen)
    marginal_prior = PriorSpec(np.clip(space_marginals(space), 1e-9, 1 - 1e-9))
    cohort = Cohort(prior=marginal_prior, truth_mask=int(truth_mask))

    lab = TestLab(model, cohort.truth_mask, gen)
    posterior = Posterior(space.copy(), model, track_entropy=track_entropy)
    policy.reset()

    stages_used = 0
    exhausted = False
    report = posterior.classify(positive_threshold, negative_threshold)
    while not report.all_classified:
        if stages_used >= max_stages:
            exhausted = True
            break
        pools = policy.select(posterior, report.undetermined_mask())
        if not pools:
            raise RuntimeError(f"policy {policy.name} proposed no pools")
        posterior.begin_stage()
        stages_used += 1
        for pool in pools:
            posterior.update(pool, lab.run(pool))
        if prune_epsilon > 0.0:
            posterior.prune(prune_epsilon)
        report = posterior.classify(positive_threshold, negative_threshold)

    confusion = evaluate_classification(report, cohort.truth_mask)
    eff = efficiency_report(
        cohort.n_items, lab.stats.num_tests, stages_used, lab.stats.num_samples_used
    )
    return ScreenResult(
        cohort=cohort,
        report=report,
        confusion=confusion,
        efficiency=eff,
        posterior=posterior,
        stages_used=stages_used,
        exhausted_budget=exhausted,
    )
