"""The pooling calculator (Monte-Carlo analogue of the paper's web tool).

The Biostatistics'22 companion introduced a web calculator that weighs
group-testing savings against extra stages and variability under given
prevalence and assay conditions.  :func:`pooling_calculator` reproduces
its decision table by simulation: for each prevalence it replicates
screens and reports expected tests per individual, expected stages,
their variability, and accuracy — the inputs to a pool/don't-pool call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.bayes.dilution import ResponseModel
from repro.bayes.priors import PriorSpec
from repro.halving.policy import SelectionPolicy
from repro.metrics.reporting import format_table
from repro.util.rng import RngLike, as_rng
from repro.workflows.classify import screen_with_backend
from repro.workflows.options import ScreenOptions

__all__ = ["CalculatorEntry", "pooling_calculator", "format_calculator_table"]


@dataclass(frozen=True)
class CalculatorEntry:
    """Monte-Carlo summary for one prevalence level."""

    prevalence: float
    cohort_size: int
    replications: int
    mean_tests_per_individual: float
    std_tests_per_individual: float
    mean_stages: float
    std_stages: float
    mean_accuracy: float

    @property
    def expected_savings(self) -> float:
        """Fraction of tests saved vs individual testing (may be < 0)."""
        return 1.0 - self.mean_tests_per_individual

    @property
    def pooling_recommended(self) -> bool:
        """The calculator's verdict: does pooling save tests here?"""
        return self.expected_savings > 0.0


def pooling_calculator(
    model: ResponseModel,
    policy_factory: Callable[[], SelectionPolicy],
    prevalences: Sequence[float],
    cohort_size: int = 12,
    replications: int = 20,
    rng: RngLike = None,
    max_stages: int = 50,
    positive_threshold: float = 0.99,
    backend: str = "dense",
) -> List[CalculatorEntry]:
    """Tabulate expected cost/quality per prevalence level.

    The negative (clearance) threshold adapts to each prevalence: it is
    set a decade below the prior risk (capped at 1%), so a cohort is
    never "cleared" by its prior alone — evidence from at least one
    pooled test is always required.

    ``backend`` picks the posterior representation per replication:
    ``"dense"`` runs the serial exact reference; ``"sparse"`` /
    ``"particle"`` run driver-local approximate screens, which is what
    makes cohorts beyond the dense 2^N wall tabulable.
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    gen = as_rng(rng)
    entries: List[CalculatorEntry] = []
    for prev in prevalences:
        prior = PriorSpec.uniform(cohort_size, float(prev))
        negative_threshold = min(0.01, float(prev) / 10.0)
        tpis, stages, accs = [], [], []
        for _ in range(replications):
            res = screen_with_backend(
                prior,
                model,
                policy_factory(),
                backend,
                gen,
                options=ScreenOptions(
                    max_stages=max_stages,
                    positive_threshold=positive_threshold,
                    negative_threshold=negative_threshold,
                ),
            )
            tpis.append(res.tests_per_individual)
            stages.append(res.stages_used)
            accs.append(res.accuracy)
        entries.append(
            CalculatorEntry(
                prevalence=float(prev),
                cohort_size=cohort_size,
                replications=replications,
                mean_tests_per_individual=float(np.mean(tpis)),
                std_tests_per_individual=float(np.std(tpis)),
                mean_stages=float(np.mean(stages)),
                std_stages=float(np.std(stages)),
                mean_accuracy=float(np.mean(accs)),
            )
        )
    return entries


def format_calculator_table(entries: Sequence[CalculatorEntry]) -> str:
    """Render calculator entries as the decision table."""
    rows = [
        [
            f"{e.prevalence:.1%}",
            e.mean_tests_per_individual,
            e.std_tests_per_individual,
            e.mean_stages,
            e.mean_accuracy,
            "pool" if e.pooling_recommended else "individual",
        ]
        for e in entries
    ]
    return format_table(
        ["prevalence", "tests/indiv", "±sd", "stages", "accuracy", "verdict"],
        rows,
        title="Pooling calculator",
    )
