"""Longitudinal surveillance campaigns over an epidemic wave.

Runs one screen per day while prevalence follows an epidemic trajectory,
accumulating the cost/quality series the surveillance experiments plot:
tests per individual and accuracy as functions of the day's prevalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.bayes.dilution import ResponseModel
from repro.halving.policy import SelectionPolicy
from repro.simulate.epidemic import sir_prevalence, surveillance_priors
from repro.util.rng import RngLike, as_rng
from repro.workflows.classify import ScreenResult, screen_with_backend
from repro.workflows.options import ScreenOptions

__all__ = ["DayOutcome", "SurveillanceResult", "run_surveillance"]


@dataclass(frozen=True)
class DayOutcome:
    """One day's screen in the campaign."""

    day: int
    prevalence: float
    result: ScreenResult


@dataclass
class SurveillanceResult:
    """A whole campaign's outcomes plus aggregate series."""

    days: List[DayOutcome] = field(default_factory=list)

    @property
    def total_tests(self) -> int:
        return sum(d.result.efficiency.num_tests for d in self.days)

    @property
    def total_individuals(self) -> int:
        return sum(d.result.cohort.n_items for d in self.days)

    @property
    def overall_tests_per_individual(self) -> float:
        n = self.total_individuals
        return self.total_tests / n if n else 0.0

    def prevalence_series(self) -> np.ndarray:
        return np.array([d.prevalence for d in self.days])

    def tests_per_individual_series(self) -> np.ndarray:
        return np.array([d.result.tests_per_individual for d in self.days])

    def accuracy_series(self) -> np.ndarray:
        return np.array([d.result.accuracy for d in self.days])

    def detected_positives(self) -> int:
        return sum(len(d.result.report.positives()) for d in self.days)

    def true_positives_present(self) -> int:
        return sum(d.result.cohort.n_positive for d in self.days)

    def estimated_prevalence_series(
        self, model, window: int = 1, **estimate_kwargs
    ) -> List:
        """Per-day prevalence posteriors inferred from the pooled outcomes.

        The campaign's own testing traffic is the data: each day's
        evidence log supplies ``(pool_size, outcome)`` pairs to
        :func:`repro.bayes.prevalence.estimate_prevalence`.  ``window``
        pools the trailing days' outcomes (smoother, slightly lagged).
        Binary response models only.
        """
        from repro.bayes.prevalence import estimate_prevalence

        posteriors = []
        for i in range(len(self.days)):
            outcomes = []
            for d in self.days[max(0, i - window + 1) : i + 1]:
                outcomes.extend(
                    (r.pool_size, r.outcome)
                    for r in d.result.posterior.log.records
                )
            posteriors.append(
                estimate_prevalence(outcomes, model, **estimate_kwargs)
                if outcomes
                else None
            )
        return posteriors


def run_surveillance(
    model: ResponseModel,
    policy_factory: Callable[[], SelectionPolicy],
    days: int = 30,
    cohort_size: int = 12,
    rng: RngLike = None,
    prevalence: Optional[np.ndarray] = None,
    dispersion: float = 8.0,
    max_stages: int = 50,
    backend: str = "dense",
) -> SurveillanceResult:
    """Screen a fresh cohort each day of an epidemic wave.

    ``policy_factory`` builds a fresh policy per day (policies may carry
    per-screen state).  Pass an explicit *prevalence* series to pin the
    epidemic; the default is the standard SIR wave.  ``backend`` picks
    the per-day posterior representation (``"dense"`` exact serial,
    ``"sparse"`` / ``"particle"`` approximate driver-local), so
    epidemic-wave campaigns can run cohorts past the dense ``2^N`` wall.
    """
    gen = as_rng(rng)
    if prevalence is None:
        prevalence = sir_prevalence(days)
    campaign = SurveillanceResult()
    for day, prior in surveillance_priors(prevalence, cohort_size, dispersion, gen):
        result = screen_with_backend(
            prior, model, policy_factory(), backend, rng=gen,
            options=ScreenOptions(max_stages=max_stages),
        )
        campaign.days.append(
            DayOutcome(day=day, prevalence=float(prevalence[day]), result=result)
        )
    return campaign
