"""Shared options for the two screen drivers.

:func:`repro.workflows.run_screen` (serial) and
:meth:`repro.sbgt.SBGTSession.run_screen` (distributed) run the same
stage protocol but historically took the tuning knobs as loose keyword
arguments.  :class:`ScreenOptions` is the one bundle both accept; the
old keywords still work as deprecated aliases (one release of grace)
through :func:`resolve_screen_options`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

__all__ = ["ScreenOptions", "resolve_screen_options"]


@dataclass(frozen=True)
class ScreenOptions:
    """Tuning knobs shared by the serial and distributed screen drivers.

    Parameters
    ----------
    positive_threshold / negative_threshold:
        Marginal cut-offs that settle an individual.
    max_stages:
        Stage budget; a screen that exhausts it reports
        ``exhausted_budget=True`` with whatever is still undetermined.
    prune_epsilon:
        When positive, prune the posterior support to the ``1-ε`` core
        after each stage (``0`` = exact inference).
    track_entropy:
        Record entropy before/after each test (extra pass per update).
    """

    positive_threshold: float = 0.99
    negative_threshold: float = 0.01
    max_stages: int = 50
    prune_epsilon: float = 0.0
    track_entropy: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.negative_threshold < self.positive_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= neg < pos <= 1")
        if self.max_stages < 1:
            raise ValueError("max_stages must be >= 1")
        if not 0.0 <= self.prune_epsilon < 1.0:
            raise ValueError("prune_epsilon must be in [0, 1)")

    def with_(self, **kwargs) -> "ScreenOptions":
        return replace(self, **kwargs)


_OPTION_NAMES = frozenset(f.name for f in fields(ScreenOptions))


def resolve_screen_options(
    options: Optional[ScreenOptions],
    legacy: Dict[str, object],
    where: str,
    defaults: Optional[ScreenOptions] = None,
) -> ScreenOptions:
    """Merge the ``options=`` bundle with deprecated loose keywords.

    *legacy* is the caller's ``**kwargs``; unknown names raise
    :class:`TypeError` exactly like a normal bad keyword would, known
    names emit a :class:`DeprecationWarning` and override *defaults*.
    Mixing ``options=`` with legacy keywords is ambiguous and rejected.
    """
    unknown = sorted(set(legacy) - _OPTION_NAMES)
    if unknown:
        raise TypeError(
            f"{where}() got unexpected keyword argument(s): {', '.join(unknown)}"
        )
    if legacy and options is not None:
        raise TypeError(
            f"{where}() takes either options=ScreenOptions(...) or the "
            f"deprecated loose keywords ({', '.join(sorted(legacy))}), not both"
        )
    if legacy:
        names = ", ".join(sorted(legacy))
        warnings.warn(
            f"passing {names} to {where}() is deprecated; "
            f"use options=ScreenOptions(...)",
            DeprecationWarning,
            stacklevel=3,
        )
        return replace(defaults or ScreenOptions(), **legacy)
    if options is not None:
        return options
    return defaults or ScreenOptions()
