"""Single-threaded NumPy comparator.

Sits between the pure-Python dict baseline and distributed SBGT in the
speedup ablation: it shares SBGT's vectorised kernels but runs them on
one unpartitioned array with no engine.  Comparing all three separates
how much of SBGT's win comes from vectorisation versus parallel
execution — the decomposition experiment R8 reports.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.bayes.dilution import ResponseModel
from repro.bayes.priors import PriorSpec
from repro.halving.bha import select_halving_pool
from repro.lattice import ops as lops
from repro.lattice.states import StateSpace
from repro.util.bits import popcount64

__all__ = ["NumpySerialRunner"]


class NumpySerialRunner:
    """Drives the vectorised kernels serially (one array, one thread)."""

    def __init__(self, prior: PriorSpec, model: ResponseModel) -> None:
        self.space: StateSpace = prior.build_dense()
        self.model = model
        self.num_tests = 0

    @property
    def n_items(self) -> int:
        return self.space.n_items

    def update(self, pool_mask: int, outcome: Any) -> None:
        pool_size = int(popcount64(np.asarray([pool_mask], dtype=np.uint64))[0])
        log_lik = self.model.log_likelihood_by_count(outcome, pool_size)
        lops.posterior_update(self.space, pool_mask, log_lik)
        self.num_tests += 1

    def marginals(self) -> np.ndarray:
        return lops.marginals(self.space)

    def entropy(self) -> float:
        return lops.entropy(self.space)

    def select_halving_pool(self, candidate_masks: Sequence[int]) -> Tuple[int, float, float]:
        return select_halving_pool(self.space, np.asarray(candidate_masks, dtype=np.uint64))

    def top_states(self, k: int) -> List[Tuple[int, float]]:
        return lops.top_states(self.space, k)
