"""Comparator implementations.

* :mod:`repro.baseline.pydict` — a per-state, dict-backed pure-Python
  implementation of the same Bayesian lattice algorithms.  It stands in
  for the prior framework SBGT was evaluated against (unavailable closed
  research code): algorithmically identical, one-state-at-a-time, no
  vectorisation — the cost profile SBGT's speedups are measured from.
* :mod:`repro.baseline.numpy_serial` — the single-threaded NumPy path
  (the serial :class:`~repro.bayes.posterior.Posterior`), separating
  "vectorisation" from "distribution" in the speedup ablation.
"""

from repro.baseline.pydict import PyDictLattice, PyDictPosterior
from repro.baseline.numpy_serial import NumpySerialRunner

__all__ = ["PyDictLattice", "PyDictPosterior", "NumpySerialRunner"]
