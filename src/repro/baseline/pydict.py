"""Per-state pure-Python reference implementation (the comparator).

Every operation loops over a ``{state_mask: probability}`` dict exactly
the way a straightforward research implementation of the Biostatistics'22
framework does.  *No NumPy in any per-state path* — that is the point:
R1–R3 time these loops against SBGT's partitioned kernels, and the unit
suite uses this class as an independent oracle for correctness (same
math, disjoint implementation).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.bayes.dilution import ResponseModel

__all__ = ["PyDictLattice", "PyDictPosterior"]


def _popcount(x: int) -> int:
    return bin(x).count("1")


class PyDictLattice:
    """A lattice model as a plain dict of linear-space probabilities."""

    def __init__(self, n_items: int, probs: Dict[int, float]) -> None:
        if not probs:
            raise ValueError("lattice must contain at least one state")
        self.n_items = int(n_items)
        self.probs = dict(probs)

    # ------------------------------------------------------------------
    @classmethod
    def from_risks(cls, risks: Sequence[float]) -> "PyDictLattice":
        """Product-Bernoulli prior, built state by state."""
        n = len(risks)
        probs: Dict[int, float] = {}
        for state in range(1 << n):
            p = 1.0
            for i in range(n):
                if (state >> i) & 1:
                    p *= risks[i]
                else:
                    p *= 1.0 - risks[i]
            probs[state] = p
        return cls(n, probs)

    @property
    def size(self) -> int:
        return len(self.probs)

    def total_mass(self) -> float:
        return sum(self.probs.values())

    def normalize(self) -> None:
        total = self.total_mass()
        if total <= 0.0:
            raise ValueError("cannot normalize zero-mass lattice")
        for state in self.probs:
            self.probs[state] /= total

    # ------------------------------------------------------------------
    # lattice manipulation (timed by R1)
    # ------------------------------------------------------------------
    def bayes_update(self, pool_mask: int, lik_by_count: Sequence[float]) -> None:
        """Multiply each state by the outcome likelihood and renormalise."""
        for state in self.probs:
            k = _popcount(state & pool_mask)
            self.probs[state] *= lik_by_count[k]
        self.normalize()

    def condition(self, positive_mask: int = 0, negative_mask: int = 0) -> None:
        keep = {
            s: p
            for s, p in self.probs.items()
            if (s & positive_mask) == positive_mask and (s & negative_mask) == 0
        }
        if not keep:
            raise ValueError("conditioning removed every state")
        self.probs = keep
        self.normalize()

    def prune(self, epsilon: float) -> int:
        """Keep the smallest top-probability set with mass ≥ 1-ε."""
        ranked = sorted(self.probs.items(), key=lambda kv: (-kv[1], kv[0]))
        kept: Dict[int, float] = {}
        mass = 0.0
        for state, p in ranked:
            kept[state] = p
            mass += p
            if mass >= 1.0 - epsilon:
                break
        dropped = len(self.probs) - len(kept)
        self.probs = kept
        self.normalize()
        return dropped

    # ------------------------------------------------------------------
    # test selection (timed by R2)
    # ------------------------------------------------------------------
    def down_set_mass(self, pool_mask: int) -> float:
        total = 0.0
        for state, p in self.probs.items():
            if state & pool_mask == 0:
                total += p
        return total

    def select_halving_pool(self, candidate_masks: Iterable[int]) -> Tuple[int, float, float]:
        """Arg-min of |down-set mass − 1/2| with the same tie-breaking
        as :func:`repro.halving.bha.select_halving_pool`."""
        best: Tuple[float, int, int] | None = None
        best_mass = 0.0
        for pool in candidate_masks:
            pool = int(pool)
            mass = self.down_set_mass(pool)
            key = (abs(mass - 0.5), _popcount(pool), pool)
            if best is None or key < best:
                best = key
                best_mass = mass
        if best is None:
            raise ValueError("no candidate pools supplied")
        return best[2], best_mass, best[0]

    # ------------------------------------------------------------------
    # statistical analysis (timed by R3)
    # ------------------------------------------------------------------
    def marginals(self) -> List[float]:
        out = [0.0] * self.n_items
        for state, p in self.probs.items():
            for i in range(self.n_items):
                if (state >> i) & 1:
                    out[i] += p
        return out

    def entropy(self) -> float:
        h = 0.0
        for p in self.probs.values():
            if p > 0.0:
                h -= p * math.log(p)
        return h

    def map_state(self) -> int:
        return max(self.probs.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    def top_states(self, k: int) -> List[Tuple[int, float]]:
        ranked = sorted(self.probs.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]


class PyDictPosterior:
    """Posterior façade over :class:`PyDictLattice` (mirrors ``Posterior``)."""

    def __init__(self, risks: Sequence[float], model: ResponseModel) -> None:
        self.lattice = PyDictLattice.from_risks(list(risks))
        self.model = model
        self.num_tests = 0

    @property
    def n_items(self) -> int:
        return self.lattice.n_items

    def update(self, pool: Sequence[int] | int, outcome: Any) -> None:
        if isinstance(pool, int):
            pool_mask = pool
        else:
            pool_mask = 0
            for i in pool:
                pool_mask |= 1 << int(i)
        pool_size = _popcount(pool_mask)
        log_lik = self.model.log_likelihood_by_count(outcome, pool_size)
        lik = [math.exp(v) for v in log_lik]
        self.lattice.bayes_update(pool_mask, lik)
        self.num_tests += 1

    def marginals(self) -> List[float]:
        return self.lattice.marginals()

    def classify(
        self, positive_threshold: float = 0.99, negative_threshold: float = 0.01
    ) -> List[str]:
        out = []
        for m in self.marginals():
            if m >= positive_threshold:
                out.append("positive")
            elif m <= negative_threshold:
                out.append("negative")
            else:
                out.append("undetermined")
        return out
