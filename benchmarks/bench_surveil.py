#!/usr/bin/env python3
"""Multi-site surveillance allocator benchmark (repro.surveil).

The headline claim of the surveillance layer: on a heterogeneous fleet
(a few hot sites hidden among cold ones), Thompson-sampling budget
allocation finds substantially more cases than the uniform status quo
with the same test budget.  :func:`compare_allocators` runs the same
seeded fleet under every allocator; the asserted gate
(:func:`test_thompson_beats_uniform`) is the CI acceptance criterion —
Thompson must find at least **1.2×** the cases uniform does.

Usage::

    python benchmarks/bench_surveil.py                # default fleet
    python benchmarks/bench_surveil.py --sites 16 --rounds 20
    PYTHONPATH=src python -m pytest benchmarks/bench_surveil.py -q
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, Optional

import pytest

from repro.engine import Context
from repro.metrics.reporting import format_table
from repro.surveil import Campaign, CampaignConfig, heterogeneous_fleet

#: The seeded acceptance scenario: 12 sites spanning 0.4%–15% prevalence.
FLEET_SITES = 12
FLEET_KWARGS: Dict[str, Any] = {"cohort_size": 10, "seed": 0, "low": 0.004, "high": 0.15}
ROUNDS = 12
BUDGET = 6
GATE_RATIO = 1.2

ALLOCATORS = ("thompson", "uniform", "greedy")


def run_campaign(
    allocator: str,
    num_sites: int = FLEET_SITES,
    rounds: int = ROUNDS,
    budget: int = BUDGET,
    seed: int = 0,
    ctx=None,
) -> Dict[str, Any]:
    """One allocator's campaign on the seeded heterogeneous fleet."""
    fleet = heterogeneous_fleet(num_sites, **{**FLEET_KWARGS, "seed": seed})
    config = CampaignConfig(
        rounds=rounds, budget=budget, allocator=allocator, seed=seed, max_stages=40
    )
    t0 = time.perf_counter()
    result = Campaign(fleet, config, ctx=ctx).run()
    wall_s = time.perf_counter() - t0
    summary = result.summary()
    return {
        "allocator": allocator,
        "cases": summary["total_cases"],
        "tests": summary["total_tests"],
        "screens": summary["total_screens"],
        "cases_per_screen": round(summary["cases_per_screen"], 3),
        "tests_per_case": round(summary["tests_per_case"], 2),
        "wall_s": round(wall_s, 2),
    }


def compare_allocators(
    num_sites: int = FLEET_SITES,
    rounds: int = ROUNDS,
    budget: int = BUDGET,
    seed: int = 0,
    ctx=None,
) -> Dict[str, Any]:
    """Every allocator on the same fleet, plus the headline ratio."""
    rows = {
        name: run_campaign(name, num_sites, rounds, budget, seed, ctx=ctx)
        for name in ALLOCATORS
    }
    uniform_cases = max(rows["uniform"]["cases"], 1)
    return {
        "fleet": {
            "sites": num_sites,
            "rounds": rounds,
            "budget": budget,
            "seed": seed,
            **{k: v for k, v in FLEET_KWARGS.items() if k != "seed"},
        },
        "allocators": rows,
        "thompson_vs_uniform_cases": round(
            rows["thompson"]["cases"] / uniform_cases, 2
        ),
        "gate_ratio": GATE_RATIO,
    }


# ---------------------------------------------------------------------------
# asserted acceptance gates (run by CI)
# ---------------------------------------------------------------------------
def test_thompson_beats_uniform():
    """The bandit gate: ≥1.2× the cases of uniform allocation, seeded."""
    doc = compare_allocators()
    ratio = doc["thompson_vs_uniform_cases"]
    thompson, uniform = doc["allocators"]["thompson"], doc["allocators"]["uniform"]
    print(
        f"\nthompson {thompson['cases']} cases vs uniform {uniform['cases']} "
        f"({ratio:.2f}x, gate {GATE_RATIO}x) on {FLEET_SITES} sites"
    )
    assert ratio >= GATE_RATIO, doc


@pytest.mark.parametrize("backend", ["dense", "sparse", "particle"])
def test_campaign_backend_smoke(backend):
    """Every posterior backend drives a short campaign to completion."""
    fleet = heterogeneous_fleet(6, cohort_size=8, seed=1)
    config = CampaignConfig(
        rounds=3, budget=4, allocator="thompson", backend=backend, seed=1,
        max_stages=30,
    )
    result = Campaign(fleet, config).run()
    assert result.total_screens == 12
    assert result.summary()["backend"] == backend


def test_engine_campaign_matches_serial():
    """Round screens through the engine job graph reproduce serial runs."""
    serial = run_campaign("thompson", num_sites=6, rounds=4, budget=4, seed=2)
    with Context(mode="threads", parallelism=4) as ctx:
        parallel = run_campaign("thompson", num_sites=6, rounds=4, budget=4,
                                seed=2, ctx=ctx)
    for key in ("cases", "tests", "screens"):
        assert parallel[key] == serial[key]


# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=FLEET_SITES)
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--budget", type=int, default=BUDGET)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0,
                        help="engine parallelism (0 = serial in-process)")
    args = parser.parse_args(argv)

    if args.workers > 0:
        with Context(mode="threads", parallelism=args.workers) as ctx:
            doc = compare_allocators(args.sites, args.rounds, args.budget,
                                     args.seed, ctx=ctx)
    else:
        doc = compare_allocators(args.sites, args.rounds, args.budget, args.seed)

    rows = [
        [r["allocator"], r["cases"], r["screens"], r["tests"],
         f"{r['cases_per_screen']:.3f}", f"{r['tests_per_case']:.1f}",
         f"{r['wall_s']:.2f}"]
        for r in doc["allocators"].values()
    ]
    print(format_table(
        ["allocator", "cases", "screens", "tests", "cases/screen",
         "tests/case", "wall (s)"],
        rows,
        title=f"Surveil allocators ({args.sites} sites, {args.rounds} rounds, "
              f"budget {args.budget})",
    ))
    ratio = doc["thompson_vs_uniform_cases"]
    verdict = "PASS" if ratio >= GATE_RATIO else "FAIL"
    print(f"\nthompson vs uniform: {ratio:.2f}x cases (gate {GATE_RATIO}x) [{verdict}]")
    return 0 if ratio >= GATE_RATIO else 1


if __name__ == "__main__":
    sys.exit(main())
