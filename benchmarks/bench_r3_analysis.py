"""R3 — statistical analyses (abstract claim: up to 1523× vs SOTA).

Times the analysis operation class — posterior marginals (the
classification input), entropy, and top-states — on the three
implementations.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZES
from repro.baseline.pydict import PyDictLattice
from repro.bayes.priors import PriorSpec
from repro.lattice.ops import entropy, marginals, top_states
from repro.sbgt.distributed_lattice import DistributedLattice


@pytest.mark.parametrize("n", SIZES["r3_baseline"])
def test_r3_marginals_pydict(benchmark, n):
    lattice = PyDictLattice.from_risks([0.05] * n)
    benchmark(lattice.marginals)
    benchmark.extra_info["impl"] = "pydict"


@pytest.mark.parametrize("n", SIZES["r3_sbgt"])
def test_r3_marginals_numpy(benchmark, n):
    space = PriorSpec.uniform(n, 0.05).build_dense()
    benchmark(marginals, space)
    benchmark.extra_info["impl"] = "numpy-serial"


@pytest.mark.parametrize("n", SIZES["r3_sbgt"])
def test_r3_marginals_sbgt(benchmark, bench_ctx, n):
    lattice = DistributedLattice.from_prior(bench_ctx, PriorSpec.uniform(n, 0.05), 8)
    benchmark(lattice.marginals)
    benchmark.extra_info["impl"] = "sbgt"
    lattice.unpersist()


@pytest.mark.parametrize("n", SIZES["r3_baseline"])
def test_r3_entropy_pydict(benchmark, n):
    lattice = PyDictLattice.from_risks([0.05] * n)
    benchmark(lattice.entropy)
    benchmark.extra_info["impl"] = "pydict"


@pytest.mark.parametrize("n", SIZES["r3_sbgt"])
def test_r3_entropy_sbgt(benchmark, bench_ctx, n):
    lattice = DistributedLattice.from_prior(bench_ctx, PriorSpec.uniform(n, 0.05), 8)
    benchmark(lattice.entropy)
    benchmark.extra_info["impl"] = "sbgt"
    lattice.unpersist()


@pytest.mark.parametrize("n", SIZES["r3_baseline"])
def test_r3_top_states_pydict(benchmark, n):
    lattice = PyDictLattice.from_risks([0.05] * n)
    benchmark(lattice.top_states, 10)
    benchmark.extra_info["impl"] = "pydict"


@pytest.mark.parametrize("n", SIZES["r3_sbgt"])
def test_r3_top_states_numpy(benchmark, n):
    space = PriorSpec.uniform(n, 0.05).build_dense()
    benchmark(top_states, space, 10)
    benchmark.extra_info["impl"] = "numpy-serial"


@pytest.mark.parametrize("n", SIZES["r3_sbgt"])
def test_r3_top_states_sbgt(benchmark, bench_ctx, n):
    lattice = DistributedLattice.from_prior(bench_ctx, PriorSpec.uniform(n, 0.05), 8)
    benchmark(lattice.top_states, 10)
    benchmark.extra_info["impl"] = "sbgt"
    lattice.unpersist()
