#!/usr/bin/env python3
"""Closed-loop load generator for the serving layer.

Boots a :class:`~repro.serve.app.ReproServer` in-process on an
ephemeral port and drives it with N concurrent closed-loop clients
(each fires its next request as soon as the previous response lands),
then reports throughput, latency percentiles, the micro-batcher's
coalescing ratio, and the cold/warm cache speedup.

Usage::

    python benchmarks/bench_serve_load.py                 # default mix
    python benchmarks/bench_serve_load.py --clients 64 --requests 256
    python benchmarks/bench_serve_load.py --distinct 8    # 8 request shapes

The ``--distinct 1`` run is the ISSUE acceptance scenario: every client
asks for the same calculator table, so requests must coalesce into a
handful of jobs and repeats must come straight from the cache.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.app import ReproServer, ServeConfig

CALC_TEMPLATE = {"cohort": 8, "prevalences": [0.02, 0.05, 0.1], "replications": 5}


async def _post(
    host: str, port: int, path: str, body: Dict[str, Any]
) -> Tuple[int, bytes, float]:
    t0 = time.perf_counter()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode("utf-8")
        writer.write(
            (
                f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
            ).encode("latin-1")
            + payload
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head, _, body_bytes = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body_bytes, time.perf_counter() - t0


async def _closed_loop_client(
    host: str, port: int, bodies: List[Dict[str, Any]], latencies: List[float],
    statuses: Dict[int, int],
) -> None:
    for body in bodies:
        status, _, wall = await _post(host, port, "/calculator", body)
        latencies.append(wall)
        statuses[status] = statuses.get(status, 0) + 1


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


async def run_load(
    clients: int,
    requests: int,
    distinct: int,
    window_ms: float,
    seed: int = 0,
) -> Dict[str, Any]:
    """One load run; returns the report dict (also printable via main)."""
    config = ServeConfig(
        port=0,
        workers=2,
        compute_threads=4,
        batch_window_s=window_ms / 1000.0,
        max_inflight=max(64, clients * 2),
        cache_entries=max(64, distinct * 2),
    )
    server = ReproServer(config)
    host, port = await server.start()
    try:
        # Partition the request budget over closed-loop clients, cycling
        # through `distinct` request shapes (seed varies, rest fixed).
        shapes = [
            {**CALC_TEMPLATE, "seed": seed + i} for i in range(distinct)
        ]
        per_client = max(1, requests // clients)
        latencies: List[float] = []
        statuses: Dict[int, int] = {}
        t0 = time.perf_counter()
        await asyncio.gather(
            *[
                _closed_loop_client(
                    host, port,
                    [shapes[(c + i) % distinct] for i in range(per_client)],
                    latencies, statuses,
                )
                for c in range(clients)
            ]
        )
        wall = time.perf_counter() - t0

        # Warm-repeat probe: the same request twice, cold vs cache.
        probe = {**CALC_TEMPLATE, "seed": seed + distinct + 1000}
        _, _, cold = await _post(host, port, "/calculator", probe)
        _, _, warm = await _post(host, port, "/calculator", probe)

        latencies.sort()
        batch = server.batcher.snapshot()
        cache = server.cache.snapshot() if server.cache else {}
        return {
            "clients": clients,
            "requests": len(latencies),
            "distinct_shapes": distinct,
            "wall_s": round(wall, 4),
            "throughput_rps": round(len(latencies) / wall, 1) if wall else 0.0,
            "statuses": statuses,
            "latency_ms": {
                "mean": round(statistics.fmean(latencies) * 1000, 2),
                "p50": round(_quantile(latencies, 0.50) * 1000, 2),
                "p95": round(_quantile(latencies, 0.95) * 1000, 2),
                "max": round(latencies[-1] * 1000, 2),
            },
            "batcher": batch,
            "cache": cache,
            "cold_ms": round(cold * 1000, 2),
            "warm_ms": round(warm * 1000, 2),
            "warm_speedup": round(cold / warm, 1) if warm else float("inf"),
        }
    finally:
        await server.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=64,
                        help="concurrent closed-loop clients")
    parser.add_argument("--requests", type=int, default=64,
                        help="total request budget across clients")
    parser.add_argument("--distinct", type=int, default=1,
                        help="distinct request shapes cycled through")
    parser.add_argument("--window-ms", type=float, default=20.0,
                        help="micro-batcher collection window")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    report = asyncio.run(
        run_load(args.clients, args.requests, args.distinct, args.window_ms,
                 seed=args.seed)
    )
    print(json.dumps(report, indent=2, sort_keys=True))

    ok = True
    if args.distinct == 1:
        jobs = report["batcher"]["jobs"]
        if jobs >= 8:
            print(f"FAIL: {report['requests']} identical requests ran {jobs} jobs "
                  "(expected < 8)", file=sys.stderr)
            ok = False
        else:
            print(f"ok: batching ratio {report['batcher']['batching_ratio']}x "
                  f"({jobs} job(s) for {report['requests']} requests)",
                  file=sys.stderr)
    if report["warm_speedup"] < 10.0:
        print(f"FAIL: warm repeat only {report['warm_speedup']}x faster "
              "(expected >= 10x)", file=sys.stderr)
        ok = False
    else:
        print(f"ok: warm repeat {report['warm_speedup']}x faster "
              f"({report['cold_ms']}ms -> {report['warm_ms']}ms)", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
