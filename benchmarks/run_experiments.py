#!/usr/bin/env python3
"""Regenerate every reconstructed SBGT experiment table (R1–R8).

Usage::

    python benchmarks/run_experiments.py             # all experiments, small scale
    python benchmarks/run_experiments.py r1 r4       # a subset
    python benchmarks/run_experiments.py --scale full
    python benchmarks/run_experiments.py --out results.md

Prints the same rows/series the paper's evaluation reports (see
DESIGN.md's experiment index); EXPERIMENTS.md is written from this
script's output.  Timing tables use best-of-``repeats`` wall time.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro.baseline.pydict import PyDictLattice
from repro.bayes.dilution import DilutionErrorModel
from repro.bayes.priors import PriorSpec
from repro.engine import Context
from repro.halving.bha import select_halving_pool
from repro.halving.candidates import PrefixCandidates
from repro.halving.policy import BHAPolicy, DorfmanPolicy, IndividualTestingPolicy, LookaheadPolicy
from repro.lattice.ops import marginals as np_marginals
from repro.lattice.ops import posterior_update
from repro.metrics.reporting import format_table
from repro.obs import PHASE_ANALYSIS, PHASE_LATTICE, PHASE_SELECTION, Tracer
from repro.sbgt.distributed_lattice import DistributedLattice
from repro.sbgt.selector import select_halving_pool_distributed
from repro.simulate.population import make_cohort
from repro.workflows.classify import run_screen
from repro.workflows.options import ScreenOptions

MODEL = DilutionErrorModel(0.98, 0.995, 0.35)

SCALES = {
    "small": {
        "r123_baseline_ns": [10, 12, 14],
        "r123_sbgt_ns": [10, 12, 14, 16, 18],
        "r4_n": 16,
        "r4_workers": [1, 2, 4],
        "r5_prevalences": [0.005, 0.02, 0.05, 0.10, 0.20],
        "r5_reps": 10,
        "r6_reps": 10,
        "r7_dilutions": [0.0, 0.3, 0.8],
        "r7_reps": 10,
        "r8_n": 14,
        "repeats": 3,
    },
    "full": {
        "r123_baseline_ns": [12, 14, 16, 18, 20],
        "r123_sbgt_ns": [12, 14, 16, 18, 20, 22],
        "r4_n": 20,
        "r4_workers": [1, 2, 4, 8],
        "r5_prevalences": [0.005, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20],
        "r5_reps": 30,
        "r6_reps": 30,
        "r7_dilutions": [0.0, 0.2, 0.4, 0.8, 1.2],
        "r7_reps": 25,
        "r8_n": 18,
        "repeats": 3,
    },
}


def best_of(fn: Callable[[], None], repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _pool(n: int) -> int:
    return (1 << (n // 2)) - 1


def traced_phase_wall(phase: str, fn: Callable[[], None], ctx: Context) -> float:
    """Run *fn* once under a fresh tracer; return *phase*'s telemetry wall."""
    tracer = Tracer()
    tracer.attach(ctx)
    try:
        with tracer:
            fn()
    finally:
        tracer.detach(ctx)
    return tracer.phase_wall(phase)


def _candidates(n: int) -> np.ndarray:
    return PrefixCandidates(max_pool_size=n).generate(np.full(n, 0.03), (1 << n) - 1)


# ----------------------------------------------------------------------
def run_r1(cfg: dict, ctx: Context) -> str:
    """Lattice manipulation: construction + one Bayes-update sweep."""
    rows = []
    for n in cfg["r123_sbgt_ns"]:
        states = 1 << n
        log_lik = MODEL.log_likelihood_by_count(True, n // 2)
        pool = _pool(n)
        risks = [0.02] * n

        if n in cfg["r123_baseline_ns"]:
            t_build_base = best_of(lambda: PyDictLattice.from_risks(risks), cfg["repeats"])
            lat = PyDictLattice.from_risks(risks)
            lik = np.exp(log_lik).tolist()
            t_base = best_of(lambda: lat.bayes_update(pool, lik), cfg["repeats"])
        else:
            t_build_base = t_base = float("nan")

        space = PriorSpec.uniform(n, 0.02).build_dense()
        t_np = best_of(lambda: posterior_update(space, pool, log_lik), cfg["repeats"])

        def build_sbgt():
            lat = DistributedLattice.from_prior(ctx, PriorSpec.uniform(n, 0.02), 8)
            lat.unpersist()

        t_build_sbgt = best_of(build_sbgt, cfg["repeats"])
        dl = DistributedLattice.from_prior(ctx, PriorSpec.uniform(n, 0.02), 8)
        t_sbgt = best_of(lambda: dl.update(pool, log_lik), cfg["repeats"])
        t_phase = traced_phase_wall(
            PHASE_LATTICE, lambda: dl.update(pool, log_lik), ctx
        )
        dl.unpersist()

        # Manipulation-class speedup: build + update together, pydict/sbgt.
        total_base = t_build_base + t_base
        total_sbgt = t_build_sbgt + t_sbgt
        speedup = total_base / total_sbgt if np.isfinite(total_base) else float("nan")
        rows.append(
            [
                n,
                states,
                t_build_base,
                t_base,
                t_np,
                t_build_sbgt,
                t_sbgt,
                t_phase,
                f"{speedup:.0f}x",
            ]
        )
    return format_table(
        [
            "n",
            "states",
            "pydict build (s)",
            "pydict update (s)",
            "numpy update (s)",
            "sbgt build (s)",
            "sbgt update (s)",
            "lattice-op wall (s)",
            "sbgt/pydict",
        ],
        rows,
        title="R1 — lattice manipulation (construction + Bayes update sweep)",
    )


def run_r2(cfg: dict, ctx: Context) -> str:
    """Test selection: one halving selection over prefix candidates."""
    rows = []
    for n in cfg["r123_sbgt_ns"]:
        cands = _candidates(n)
        if n in cfg["r123_baseline_ns"]:
            lat = PyDictLattice.from_risks([0.03] * n)
            int_cands = [int(c) for c in cands]
            t_base = best_of(lambda: lat.select_halving_pool(int_cands), cfg["repeats"])
        else:
            t_base = float("nan")

        space = PriorSpec.uniform(n, 0.03).build_dense()
        t_np = best_of(lambda: select_halving_pool(space, cands), cfg["repeats"])

        dl = DistributedLattice.from_prior(ctx, PriorSpec.uniform(n, 0.03), 8)
        t_sbgt = best_of(lambda: select_halving_pool_distributed(dl, cands), cfg["repeats"])
        t_phase = traced_phase_wall(
            PHASE_SELECTION, lambda: select_halving_pool_distributed(dl, cands), ctx
        )
        dl.unpersist()

        speedup = t_base / t_sbgt if np.isfinite(t_base) else float("nan")
        rows.append([n, len(cands), t_base, t_np, t_sbgt, t_phase, f"{speedup:.0f}x"])
    return format_table(
        [
            "n",
            "cands",
            "pydict (s)",
            "numpy (s)",
            "sbgt (s)",
            "selection wall (s)",
            "sbgt/pydict",
        ],
        rows,
        title="R2 — test selection (Bayesian Halving over candidates)",
    )


def run_r3(cfg: dict, ctx: Context) -> str:
    """Statistical analysis: marginals + entropy per implementation."""
    rows = []
    for n in cfg["r123_sbgt_ns"]:
        if n in cfg["r123_baseline_ns"]:
            lat = PyDictLattice.from_risks([0.05] * n)
            t_base = best_of(lambda: (lat.marginals(), lat.entropy()), cfg["repeats"])
        else:
            t_base = float("nan")

        space = PriorSpec.uniform(n, 0.05).build_dense()
        from repro.lattice.ops import entropy as np_entropy

        t_np = best_of(lambda: (np_marginals(space), np_entropy(space)), cfg["repeats"])

        dl = DistributedLattice.from_prior(ctx, PriorSpec.uniform(n, 0.05), 8)
        t_sbgt = best_of(lambda: (dl.marginals(), dl.entropy()), cfg["repeats"])
        t_phase = traced_phase_wall(
            PHASE_ANALYSIS, lambda: (dl.marginals(), dl.entropy()), ctx
        )
        dl.unpersist()

        speedup = t_base / t_sbgt if np.isfinite(t_base) else float("nan")
        rows.append([n, 1 << n, t_base, t_np, t_sbgt, t_phase, f"{speedup:.0f}x"])
    return format_table(
        [
            "n",
            "states",
            "pydict (s)",
            "numpy (s)",
            "sbgt (s)",
            "analysis wall (s)",
            "sbgt/pydict",
        ],
        rows,
        title="R3 — statistical analyses (marginals + entropy)",
    )


def run_r4(cfg: dict, _ctx: Context) -> str:
    """Strong scaling, projected from measured task profiles.

    This host exposes a single vCPU, so physical multi-worker timing
    only measures contention.  Instead the workload runs once with many
    blocks in serial mode while the engine records every task's wall
    time; those task profiles are then LPT-scheduled onto p simulated
    executors (``repro.engine.metrics.simulated_makespan``), including a
    per-task dispatch overhead measured from the scheduler itself.  See
    DESIGN.md, substitution table.
    """
    from repro.engine.metrics import simulated_makespan

    n = cfg["r4_n"]
    num_blocks = 4 * max(cfg["r4_workers"])
    log_lik = MODEL.log_likelihood_by_count(True, n // 2)
    pool = _pool(n)
    cands = _candidates(n)

    with Context(mode="serial") as sctx:
        dl = DistributedLattice.from_prior(sctx, PriorSpec.uniform(n, 0.03), num_blocks)
        sctx.metrics.clear()
        dl.update(pool, log_lik)
        select_halving_pool_distributed(dl, cands)
        dl.marginals()
        jobs = sctx.metrics.jobs
        dl.unpersist()

    # Per-task dispatch overhead: job wall time not inside task bodies.
    total_tasks = sum(j.num_tasks for j in jobs)
    total_overhead = sum(j.scheduling_overhead_s for j in jobs)
    per_task_overhead = total_overhead / max(total_tasks, 1)

    def projected(workers: int) -> float:
        return sum(
            simulated_makespan([t.wall_s for t in s.tasks], workers, per_task_overhead)
            for j in jobs
            for s in j.stages
        )

    t1 = projected(1)
    rows = []
    for workers in cfg["r4_workers"]:
        t = projected(workers)
        speedup = t1 / t
        eff = speedup / workers
        rows.append([workers, t, f"{speedup:.2f}x", f"{100 * eff:.1f}%"])
    return format_table(
        ["workers", "projected time (s)", "speedup", "efficiency"],
        rows,
        title=(
            f"R4 — strong scaling projected from task profiles "
            f"(n={n}, {1 << n} states, {num_blocks} blocks, "
            f"dispatch={per_task_overhead * 1e6:.0f}us/task)"
        ),
    )


def run_r5(cfg: dict, _ctx: Context) -> str:
    """Tests/individual vs prevalence, per policy.

    Uses the mild dilution-free assay: R5 isolates pooling efficiency
    (the Biostatistics'22 savings story); dilution stress is R7.
    """
    from repro.bayes.dilution import BinaryErrorModel
    from repro.halving.policy import ArrayTestingPolicy
    from repro.metrics.bounds import min_expected_tests

    model = BinaryErrorModel(sensitivity=0.99, specificity=0.995)
    cohort_n = 12
    policies = {
        "bha": BHAPolicy,
        "dorfman": lambda: DorfmanPolicy(4),
        "array": lambda: ArrayTestingPolicy(3, 4),
        "individual": IndividualTestingPolicy,
    }
    rows = []
    for prev in cfg["r5_prevalences"]:
        prior = PriorSpec.uniform(cohort_n, prev)
        neg_thr = min(0.01, prev / 10)
        row: List = [f"{prev:.1%}"]
        for _name, factory in policies.items():
            rng = np.random.default_rng(31337)
            tpis, accs = [], []
            for rep in range(cfg["r5_reps"]):
                cohort = make_cohort(prior, rng=5000 + rep)
                res = run_screen(
                    prior, model, factory(), rng=rng, cohort=cohort,
                    options=ScreenOptions(max_stages=60, negative_threshold=neg_thr),
                )
                tpis.append(res.tests_per_individual)
                accs.append(res.accuracy)
            row.append(float(np.mean(tpis)))
        row.append(min_expected_tests(prior) / cohort_n)  # Shannon floor
        rows.append(row)
    return format_table(
        [
            "prevalence",
            "bha tests/ind",
            "dorfman tests/ind",
            "array tests/ind",
            "individual tests/ind",
            "shannon floor",
        ],
        rows,
        title=f"R5 — efficiency vs prevalence (cohort={cohort_n}, {cfg['r5_reps']} reps)",
    )


def run_r6(cfg: dict, _ctx: Context) -> str:
    """Stages/tests trade-off of look-ahead batching."""
    from repro.halving.hybrid import HybridPolicy

    prior = PriorSpec.uniform(10, 0.05)
    rules = {"bha": BHAPolicy, "lookahead-2": lambda: LookaheadPolicy(2),
             "lookahead-3": lambda: LookaheadPolicy(3),
             "hybrid": lambda: HybridPolicy()}
    rows = []
    for name, factory in rules.items():
        rng = np.random.default_rng(99)
        stages, tests = [], []
        for rep in range(cfg["r6_reps"]):
            cohort = make_cohort(prior, rng=6000 + rep)
            res = run_screen(
                prior, MODEL, factory(), rng=rng, cohort=cohort,
                options=ScreenOptions(max_stages=60),
            )
            stages.append(res.stages_used)
            tests.append(res.efficiency.num_tests)
        rows.append(
            [name, float(np.mean(stages)), float(np.std(stages)), float(np.mean(tests))]
        )
    return format_table(
        ["rule", "stages (mean)", "stages (sd)", "tests (mean)"],
        rows,
        title=f"R6 — look-ahead stage/test trade-off ({cfg['r6_reps']} reps)",
    )


def run_r7(cfg: dict, _ctx: Context) -> str:
    """Accuracy and cost across dilution strengths."""
    prior = PriorSpec.uniform(10, 0.08)
    rows = []
    for delta in cfg["r7_dilutions"]:
        model = DilutionErrorModel(0.98, 0.995, delta)
        rng = np.random.default_rng(1)
        accs, sens, tests = [], [], []
        for rep in range(cfg["r7_reps"]):
            cohort = make_cohort(prior, rng=7000 + rep)
            res = run_screen(
                prior, model, BHAPolicy(), rng=rng, cohort=cohort,
                options=ScreenOptions(max_stages=80),
            )
            accs.append(res.accuracy)
            sens.append(res.confusion.sensitivity)
            tests.append(res.efficiency.num_tests)
        rows.append(
            [delta, float(np.mean(accs)), float(np.mean(sens)), float(np.mean(tests))]
        )
    return format_table(
        ["dilution δ", "accuracy", "sensitivity", "tests (mean)"],
        rows,
        title=f"R7 — robustness under dilution ({cfg['r7_reps']} reps)",
    )


def run_r8(cfg: dict, _ctx: Context) -> str:
    """Ablations: block count and executor mode on one workload."""
    n = cfg["r8_n"]
    log_lik = MODEL.log_likelihood_by_count(True, n // 2)
    pool = _pool(n)
    cands = _candidates(n)
    sections = []

    rows = []
    with Context(mode="threads", parallelism=4) as tctx:
        for blocks in (1, 4, 16, 64):
            dl = DistributedLattice.from_prior(tctx, PriorSpec.uniform(n, 0.03), blocks)

            def step():
                dl.update(pool, log_lik)
                select_halving_pool_distributed(dl, cands)
                dl.marginals()

            rows.append([blocks, best_of(step, cfg["repeats"])])
            dl.unpersist()
    sections.append(
        format_table(["blocks", "time (s)"], rows, title=f"R8a — block count (n={n})")
    )

    rows = []
    for mode in ("serial", "threads", "processes"):
        with Context(mode=mode, parallelism=4) as mctx:
            dl = DistributedLattice.from_prior(mctx, PriorSpec.uniform(n, 0.03), 8)

            def step():
                dl.update(pool, log_lik)
                select_halving_pool_distributed(dl, cands)
                dl.marginals()

            rows.append([mode, best_of(step, cfg["repeats"])])
            dl.unpersist()
    sections.append(
        format_table(["mode", "time (s)"], rows, title=f"R8b — executor mode (n={n})")
    )
    return "\n\n".join(sections)


def engine_bench() -> dict:
    """Machine-readable micro-measurements of the process-mode data plane.

    Three numbers the data-plane work is judged by: the repeated-action
    speedup of the worker-resident block cache, the scheduler-job count
    of one Bayes update (single-pass = 1), and the in-band/out-of-band
    byte split when a lattice payload ships through pickle protocol 5.
    """
    from repro.engine.closure import serialize_oob
    from repro.engine.listener import JobStart, RecordingListener

    out: dict = {}

    def slow(x):
        time.sleep(0.01)
        return x * x

    n_actions = 6
    with Context(mode="processes", parallelism=1) as c:
        uncached = c.parallelize(list(range(5)), 1).map(slow)
        cached = c.parallelize(list(range(5)), 1).map(slow).cache()
        cached.sum()  # materialize in the worker store (untimed)
        t0 = time.perf_counter()
        for _ in range(n_actions):
            uncached.sum()
        wall_uncached = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(n_actions):
            cached.sum()
        wall_cached = time.perf_counter() - t0
    out["process_worker_cache"] = {
        "actions": n_actions,
        "uncached_wall_s": round(wall_uncached, 4),
        "cached_wall_s": round(wall_cached, 4),
        "speedup": round(wall_uncached / wall_cached, 1),
    }

    n = 12
    with Context(mode="serial") as c:
        dl = DistributedLattice.from_prior(c, PriorSpec.uniform(n, 0.02), 8)
        rec = c.add_listener(RecordingListener())
        dl.update(_pool(n), MODEL.log_likelihood_by_count(True, n // 2))
        jobs_per_update = len(rec.of_type(JobStart))
        dl.unpersist()
    out["bayes_update"] = {"n": n, "scheduler_jobs_per_update": jobs_per_update}

    space = PriorSpec.uniform(14, 0.02).build_dense()
    data, buffers = serialize_oob(space)
    out["oob_shipping"] = {
        "payload": "dense lattice, n=14 (16384 states)",
        "inband_bytes": len(data),
        "oob_buffers": len(buffers),
        "oob_bytes": sum(len(b) for b in buffers),
    }

    # Posterior backends: one update + marginals at a dense-feasible
    # size for all three representations, plus the headline number —
    # a complete large-N screen the dense lattice cannot represent.
    from repro.halving.policy import BHAPolicy
    from repro.sbgt.config import SBGTConfig
    from repro.sbgt.session import SBGTSession
    from repro.workflows.payloads import make_posterior

    n = 12
    pool = _pool(n)
    ll = MODEL.log_likelihood_by_count(True, n // 2)
    backends: dict = {}
    with Context(mode="serial") as c:
        for name in ("dense", "sparse", "particle"):
            post = make_posterior(name, prior=PriorSpec.uniform(n, 0.02), ctx=c)
            t0 = time.perf_counter()
            post.update(pool, ll)
            post.marginals()
            backends[name] = {
                "n": n,
                "states": post.num_states(),
                "update_plus_marginals_s": round(time.perf_counter() - t0, 4),
            }
            post.unpersist()

    big_n = 120
    t0 = time.perf_counter()
    session = SBGTSession(
        None,
        PriorSpec.uniform(big_n, 0.04),
        MODEL,
        SBGTConfig(backend="sparse", max_stages=200),
    )
    try:
        res = session.run_screen(BHAPolicy(), rng=7)
    finally:
        session.close()
    backends["sparse_large_n_screen"] = {
        "n": big_n,
        "wall_s": round(time.perf_counter() - t0, 3),
        "tests": res.efficiency.num_tests,
        "stages": res.stages_used,
        "accuracy": round(res.accuracy, 4),
    }
    out["posterior_backends"] = backends

    # Surveillance allocators: the seeded bandit-vs-uniform comparison
    # (the 1.2x gate itself is asserted by bench_surveil.py in CI).
    try:
        from bench_surveil import compare_allocators
    except ImportError:  # imported as benchmarks.run_experiments
        from benchmarks.bench_surveil import compare_allocators

    out["surveil"] = compare_allocators()
    return out


EXPERIMENTS: Dict[str, Callable[[dict, Context], str]] = {
    "r1": run_r1,
    "r2": run_r2,
    "r3": run_r3,
    "r4": run_r4,
    "r5": run_r5,
    "r6": run_r6,
    "r7": run_r7,
    "r8": run_r8,
}


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=[], help="r1..r8 (default: all)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--out", default=None, help="also write results to this file")
    parser.add_argument(
        "--engine-json",
        default=str(pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"),
        help="where to write the engine data-plane measurements (default: repo root)",
    )
    parser.add_argument(
        "--skip-engine-json",
        action="store_true",
        help="skip the engine data-plane bench entirely",
    )
    args = parser.parse_args(argv)

    wanted = [e.lower() for e in (args.experiments or sorted(EXPERIMENTS))]
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    cfg = SCALES[args.scale]
    outputs = []
    with Context(mode="threads", parallelism=4) as ctx:
        for name in wanted:
            t0 = time.perf_counter()
            table = EXPERIMENTS[name](cfg, ctx)
            elapsed = time.perf_counter() - t0
            outputs.append(table)
            print(table)
            print(f"[{name} done in {elapsed:.1f}s]\n")

    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(outputs) + "\n")

    if not args.skip_engine_json:
        bench = engine_bench()
        with open(args.engine_json, "w") as fh:
            json.dump(bench, fh, indent=2)
            fh.write("\n")
        print(f"[engine data-plane bench written to {args.engine_json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
