"""R2 — test selection (abstract claim: up to 1733× vs SOTA).

Times one Bayesian Halving selection over a prefix candidate set (the
per-stage cost of the sequential procedure) on the three implementations.
Selection is the heaviest per-stage operation: every candidate requires a
full down-set sweep, which is why the paper's largest speedup lands here.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SIZES
from repro.baseline.pydict import PyDictLattice
from repro.bayes.priors import PriorSpec
from repro.halving.bha import select_halving_pool
from repro.halving.candidates import PrefixCandidates
from repro.sbgt.distributed_lattice import DistributedLattice
from repro.sbgt.selector import select_halving_pool_distributed


def _candidates(n: int) -> np.ndarray:
    marg = np.full(n, 0.03)
    return PrefixCandidates(max_pool_size=n).generate(marg, (1 << n) - 1)


@pytest.mark.parametrize("n", SIZES["r2_baseline"])
def test_r2_select_pydict(benchmark, n):
    lattice = PyDictLattice.from_risks([0.03] * n)
    cands = [int(c) for c in _candidates(n)]
    benchmark(lattice.select_halving_pool, cands)
    benchmark.extra_info["impl"] = "pydict"
    benchmark.extra_info["candidates"] = len(cands)


@pytest.mark.parametrize("n", SIZES["r2_sbgt"])
def test_r2_select_numpy(benchmark, n):
    space = PriorSpec.uniform(n, 0.03).build_dense()
    cands = _candidates(n)
    benchmark(select_halving_pool, space, cands)
    benchmark.extra_info["impl"] = "numpy-serial"
    benchmark.extra_info["candidates"] = int(cands.size)


@pytest.mark.parametrize("n", SIZES["r2_sbgt"])
def test_r2_select_sbgt(benchmark, bench_ctx, n):
    lattice = DistributedLattice.from_prior(bench_ctx, PriorSpec.uniform(n, 0.03), 8)
    cands = _candidates(n)
    benchmark(select_halving_pool_distributed, lattice, cands)
    benchmark.extra_info["impl"] = "sbgt"
    benchmark.extra_info["candidates"] = int(cands.size)
    lattice.unpersist()


@pytest.mark.parametrize("n", SIZES["r2_sbgt"][:3])
def test_r2_lookahead_sbgt(benchmark, bench_ctx, n):
    """Batch (look-ahead) selection: the multi-pool generalisation."""
    from repro.sbgt.selector import select_lookahead_pools_distributed

    lattice = DistributedLattice.from_prior(bench_ctx, PriorSpec.uniform(n, 0.03), 8)
    cands = _candidates(n)
    benchmark(select_lookahead_pools_distributed, lattice, cands, 2)
    benchmark.extra_info["impl"] = "sbgt-lookahead2"
    lattice.unpersist()
