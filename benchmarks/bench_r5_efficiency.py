"""R5 — group-testing efficiency vs prevalence (Biostatistics'22 headline).

Each bench runs a Monte-Carlo batch of complete screens at one prevalence
and policy; the statistical results (tests/individual, stages, accuracy)
ride along in ``extra_info`` and the timing answers "how long does a full
SBGT-style screen take end-to-end".  The expected *shape*: Bayesian
halving saves most tests at low prevalence, Dorfman sits between, and the
advantage collapses toward individual testing as prevalence grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SIZES
from repro.bayes.dilution import BinaryErrorModel
from repro.bayes.priors import PriorSpec
from repro.halving.policy import (
    ArrayTestingPolicy,
    BHAPolicy,
    DorfmanPolicy,
    IndividualTestingPolicy,
)
from repro.workflows.classify import run_screen

# Mild, dilution-free assay: R5 isolates *pooling* efficiency (the
# Biostatistics'22 savings story); dilution stress is R7's subject.
MODEL = BinaryErrorModel(sensitivity=0.99, specificity=0.995)
COHORT = SIZES["r5_cohort"]
REPS = SIZES["r5_reps"]

POLICIES = {
    "bha": BHAPolicy,
    "dorfman": lambda: DorfmanPolicy(max(2, COHORT // 3)),
    "array": lambda: ArrayTestingPolicy(3, max(2, COHORT // 3)),
    "individual": IndividualTestingPolicy,
}


def _mc_batch(prevalence: float, policy_factory) -> dict:
    prior = PriorSpec.uniform(COHORT, prevalence)
    neg_thr = min(0.01, prevalence / 10)
    tpis, stages, accs = [], [], []
    rng = np.random.default_rng(12345)
    for _ in range(REPS):
        res = run_screen(
            prior,
            MODEL,
            policy_factory(),
            rng=rng,
            max_stages=60,
            negative_threshold=neg_thr,
        )
        tpis.append(res.tests_per_individual)
        stages.append(res.stages_used)
        accs.append(res.accuracy)
    return {
        "tests_per_individual": float(np.mean(tpis)),
        "stages": float(np.mean(stages)),
        "accuracy": float(np.mean(accs)),
    }


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("prevalence", SIZES["r5_prevalences"])
def test_r5_efficiency(benchmark, prevalence, policy):
    result = benchmark.pedantic(
        _mc_batch, args=(prevalence, POLICIES[policy]), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    benchmark.extra_info["prevalence"] = prevalence
    benchmark.extra_info["policy"] = policy
