"""R4 — strong scaling (abstract claim: "up to 97.9%" efficiency).

This host exposes a single vCPU, so physical multi-worker timing only
measures contention (see DESIGN.md substitution table).  The bench
instead times the serial many-block workload once (that is the measured
quantity) and attaches the *projected* p-worker efficiency — an LPT
schedule of the recorded per-task wall times onto p simulated executors,
charged with the measured per-task dispatch overhead — as
``extra_info``.  On a real multi-core host, flip ``mode="threads"`` in
``_run_profiled`` and the projection and measurement converge.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SIZES
from repro.bayes.dilution import DilutionErrorModel
from repro.bayes.priors import PriorSpec
from repro.engine import Context
from repro.engine.metrics import simulated_makespan
from repro.halving.candidates import PrefixCandidates
from repro.sbgt.distributed_lattice import DistributedLattice
from repro.sbgt.selector import select_halving_pool_distributed

MODEL = DilutionErrorModel(0.98, 0.995, 0.35)
N = SIZES["r4_n"]
WORKERS = SIZES["r4_workers"]
NUM_BLOCKS = 4 * max(WORKERS)


def _run_profiled() -> tuple:
    """One composite workload under task profiling; returns (jobs, overhead)."""
    log_lik = MODEL.log_likelihood_by_count(True, N // 2)
    pool = (1 << (N // 2)) - 1
    cands = PrefixCandidates(max_pool_size=N).generate(np.full(N, 0.03), (1 << N) - 1)
    with Context(mode="serial") as ctx:
        lattice = DistributedLattice.from_prior(ctx, PriorSpec.uniform(N, 0.03), NUM_BLOCKS)
        ctx.metrics.clear()
        lattice.update(pool, log_lik)
        select_halving_pool_distributed(lattice, cands)
        lattice.marginals()
        jobs = ctx.metrics.jobs
        lattice.unpersist()
    total_tasks = sum(j.num_tasks for j in jobs)
    overhead = sum(j.scheduling_overhead_s for j in jobs) / max(total_tasks, 1)
    return jobs, overhead


def _projected(jobs, overhead: float, workers: int) -> float:
    return sum(
        simulated_makespan([t.wall_s for t in s.tasks], workers, overhead)
        for j in jobs
        for s in j.stages
    )


@pytest.mark.parametrize("workers", WORKERS)
def test_r4_population_scaling(benchmark, workers):
    """The across-cohort axis: independent screen tasks projected onto
    p executors (embarrassingly parallel — efficiency bounded only by
    cohort-duration imbalance)."""
    from repro.bayes.dilution import BinaryErrorModel
    from repro.halving.policy import BHAPolicy
    from repro.workflows.population import screen_population, split_into_cohorts

    priors = split_into_cohorts(np.full(96, 0.04), 12)
    model = BinaryErrorModel(0.99, 0.995)
    holder = {}

    def measured():
        with Context(mode="serial") as ctx:
            ctx.metrics.clear()
            screen_population(ctx, priors, model, BHAPolicy, rng=5)
            holder["jobs"] = ctx.metrics.jobs

    benchmark.pedantic(measured, rounds=2, warmup_rounds=1)
    jobs = holder["jobs"]
    task_times = [t.wall_s for j in jobs for s in j.stages for t in s.tasks]
    t1 = simulated_makespan(task_times, 1)
    tp = simulated_makespan(task_times, workers)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["projected_efficiency"] = t1 / tp / workers


@pytest.mark.parametrize("workers", WORKERS)
def test_r4_projected_scaling(benchmark, workers):
    jobs_overhead = {}

    def measured():
        jobs_overhead["jo"] = _run_profiled()

    benchmark.pedantic(measured, rounds=3, warmup_rounds=1)
    jobs, overhead = jobs_overhead["jo"]
    t1 = _projected(jobs, overhead, 1)
    tp = _projected(jobs, overhead, workers)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["projected_time_s"] = tp
    benchmark.extra_info["projected_speedup"] = t1 / tp
    benchmark.extra_info["projected_efficiency"] = t1 / tp / workers
    benchmark.extra_info["states"] = 1 << N
