"""R7 — robustness under dilution effects.

Sweeps the dilution exponent from none to severe, holding cohorts fixed,
and reports accuracy / sensitivity / tests consumed.  Expected shape: the
Bayesian model keeps accuracy high by *spending more tests* as dilution
strengthens (it knows pooled negatives are less trustworthy), rather than
silently missing positives the way a fixed design does.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SIZES
from repro.bayes.dilution import DilutionErrorModel
from repro.bayes.priors import PriorSpec
from repro.halving.policy import BHAPolicy
from repro.simulate.population import make_cohort
from repro.workflows.classify import run_screen

REPS = SIZES["r7_reps"]


def _mc_batch(dilution: float) -> dict:
    prior = PriorSpec.uniform(10, 0.08)
    model = DilutionErrorModel(0.98, 0.995, dilution)
    accs, sens, tests = [], [], []
    rng = np.random.default_rng(4242)
    for rep in range(REPS):
        cohort = make_cohort(prior, rng=2000 + rep)  # same cohorts per sweep point
        res = run_screen(prior, model, BHAPolicy(), rng=rng, cohort=cohort, max_stages=80)
        accs.append(res.accuracy)
        sens.append(res.confusion.sensitivity)
        tests.append(res.efficiency.num_tests)
    return {
        "accuracy": float(np.mean(accs)),
        "sensitivity": float(np.mean(sens)),
        "tests_mean": float(np.mean(tests)),
    }


@pytest.mark.parametrize("dilution", SIZES["r7_dilutions"])
def test_r7_dilution_sweep(benchmark, dilution):
    result = benchmark.pedantic(_mc_batch, args=(dilution,), rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    benchmark.extra_info["dilution_exponent"] = dilution
