"""R1 — lattice-model manipulation (abstract claim: up to 376× vs SOTA).

Times the manipulation operation class — prior construction plus a Bayes
update sweep — on three implementations of identical math:

* ``pydict``   — per-state pure-Python dict (the prior-framework stand-in);
* ``numpy``    — single-threaded vectorised kernels;
* ``sbgt``     — the distributed lattice on the engine.

Compare rows of the pytest-benchmark table at equal ``n`` for the
speedup; ``benchmarks/run_experiments.py r1`` prints the ready-made
speedup table.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SIZES
from repro.baseline.pydict import PyDictLattice
from repro.bayes.dilution import DilutionErrorModel
from repro.bayes.priors import PriorSpec
from repro.lattice.ops import posterior_update
from repro.sbgt.distributed_lattice import DistributedLattice

MODEL = DilutionErrorModel(0.98, 0.995, 0.35)


def _pool(n: int) -> int:
    return (1 << (n // 2)) - 1  # pool the lower half of the cohort


@pytest.mark.parametrize("n", SIZES["r1_baseline"])
def test_r1_update_pydict(benchmark, n):
    risks = [0.02] * n
    lik = np.exp(MODEL.log_likelihood_by_count(True, n // 2)).tolist()
    lattice = PyDictLattice.from_risks(risks)

    def op():
        lattice.bayes_update(_pool(n), lik)

    benchmark(op)
    benchmark.extra_info["states"] = 1 << n
    benchmark.extra_info["impl"] = "pydict"


@pytest.mark.parametrize("n", SIZES["r1_sbgt"])
def test_r1_update_numpy(benchmark, n):
    prior = PriorSpec.uniform(n, 0.02)
    space = prior.build_dense()
    log_lik = MODEL.log_likelihood_by_count(True, n // 2)

    def op():
        posterior_update(space, _pool(n), log_lik)

    benchmark(op)
    benchmark.extra_info["states"] = 1 << n
    benchmark.extra_info["impl"] = "numpy-serial"


@pytest.mark.parametrize("n", SIZES["r1_sbgt"])
def test_r1_update_sbgt(benchmark, bench_ctx, n):
    prior = PriorSpec.uniform(n, 0.02)
    lattice = DistributedLattice.from_prior(bench_ctx, prior, 8)
    log_lik = MODEL.log_likelihood_by_count(True, n // 2)

    def op():
        lattice.update(_pool(n), log_lik)

    benchmark(op)
    benchmark.extra_info["states"] = 1 << n
    benchmark.extra_info["impl"] = "sbgt"
    lattice.unpersist()


@pytest.mark.parametrize("n", SIZES["r1_baseline"])
def test_r1_build_pydict(benchmark, n):
    risks = [0.02] * n
    benchmark(PyDictLattice.from_risks, risks)
    benchmark.extra_info["impl"] = "pydict"


@pytest.mark.parametrize("n", SIZES["r1_sbgt"])
def test_r1_build_sbgt(benchmark, bench_ctx, n):
    prior = PriorSpec.uniform(n, 0.02)

    def op():
        lattice = DistributedLattice.from_prior(bench_ctx, prior, 8)
        lattice.unpersist()

    benchmark(op)
    benchmark.extra_info["impl"] = "sbgt"
