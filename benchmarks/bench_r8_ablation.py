"""R8 — design-choice ablations.

Sweeps the SBGT knobs DESIGN.md calls out, one fixed composite workload
(update + selection + marginals) each:

* block count (too few blocks starves workers; too many drowns the
  scheduler in task overhead);
* executor mode (serial / threads / processes — processes pay the
  pickling costs the repro notes warn about for PySpark);
* pruning epsilon (smaller lattice after pruning vs the pruning pass
  itself).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SIZES
from repro.bayes.dilution import DilutionErrorModel
from repro.bayes.priors import PriorSpec
from repro.engine import Context
from repro.halving.candidates import PrefixCandidates
from repro.sbgt.distributed_lattice import DistributedLattice
from repro.sbgt.selector import select_halving_pool_distributed

MODEL = DilutionErrorModel(0.98, 0.995, 0.35)
N = SIZES["r8_n"]


def _workload(lattice: DistributedLattice) -> None:
    log_lik = MODEL.log_likelihood_by_count(True, N // 2)
    lattice.update((1 << (N // 2)) - 1, log_lik)
    cands = PrefixCandidates(max_pool_size=N).generate(np.full(N, 0.03), (1 << N) - 1)
    select_halving_pool_distributed(lattice, cands)
    lattice.marginals()


@pytest.mark.parametrize("num_blocks", [1, 4, 16, 64])
def test_r8_block_count(benchmark, bench_ctx, num_blocks):
    lattice = DistributedLattice.from_prior(
        bench_ctx, PriorSpec.uniform(N, 0.03), num_blocks
    )
    benchmark.pedantic(_workload, args=(lattice,), rounds=3, warmup_rounds=1)
    benchmark.extra_info["num_blocks"] = num_blocks
    lattice.unpersist()


@pytest.mark.parametrize("mode", ["serial", "threads", "processes"])
def test_r8_executor_mode(benchmark, mode):
    with Context(mode=mode, parallelism=4) as ctx:
        lattice = DistributedLattice.from_prior(ctx, PriorSpec.uniform(N, 0.03), 8)
        benchmark.pedantic(_workload, args=(lattice,), rounds=3, warmup_rounds=1)
        lattice.unpersist()
    benchmark.extra_info["mode"] = mode


@pytest.mark.parametrize("epsilon", [0.0, 1e-9, 1e-6, 1e-4])
def test_r8_prune_epsilon(benchmark, bench_ctx, epsilon):
    """Cost of a screen step after pruning at the given tolerance."""
    prior = PriorSpec.uniform(N, 0.03)

    def staged():
        lattice = DistributedLattice.from_prior(bench_ctx, prior, 8)
        log_lik = MODEL.log_likelihood_by_count(False, N)
        lattice.update((1 << N) - 1, log_lik)
        if epsilon > 0:
            lattice.prune(epsilon)
            lattice.rebalance()
        _workload(lattice)
        states = lattice.num_states()
        lattice.unpersist()
        return states

    states = benchmark.pedantic(staged, rounds=2, warmup_rounds=0)
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["states_after_prune"] = states


@pytest.mark.parametrize("compact", [False, True], ids=["plain", "compact"])
def test_r8_lattice_contraction(benchmark, bench_ctx, compact):
    """Whole-screen cost with and without contraction of settled diagnoses."""
    from repro.bayes.priors import PriorSpec
    from repro.halving.policy import BHAPolicy
    from repro.sbgt.config import SBGTConfig
    from repro.sbgt.session import SBGTSession
    from repro.simulate.population import make_cohort

    prior = PriorSpec.uniform(12, 0.05)
    cohort = make_cohort(prior, rng=404)

    def screen():
        session = SBGTSession(
            bench_ctx, prior, MODEL,
            SBGTConfig(max_stages=60, compact_classified=compact),
        )
        result = session.run_screen(BHAPolicy(), rng=42, cohort=cohort)
        session.close()
        return result.efficiency.num_tests

    tests = benchmark.pedantic(screen, rounds=3, warmup_rounds=1)
    benchmark.extra_info["compact"] = compact
    benchmark.extra_info["tests"] = tests


@pytest.mark.parametrize("max_positives", [2, 3, 4])
def test_r8_restricted_support(benchmark, bench_ctx, max_positives):
    """Rank-restricted lattices: support size vs per-stage cost (n=20)."""
    from repro.bayes.priors import PriorSpec
    from repro.sbgt.distributed_lattice import DistributedLattice

    prior = PriorSpec.uniform(20, 0.02)
    lattice, _ = DistributedLattice.from_restricted_prior(
        bench_ctx, prior, max_positives, 8
    )
    log_lik = MODEL.log_likelihood_by_count(True, 10)

    benchmark(lattice.update, (1 << 10) - 1, log_lik)
    benchmark.extra_info["max_positives"] = max_positives
    benchmark.extra_info["states"] = lattice.num_states()
    lattice.unpersist()


@pytest.mark.parametrize("strategy", ["prefix", "window", "random"])
def test_r8_candidate_strategy(benchmark, bench_ctx, strategy):
    """Selection cost per candidate-generation strategy."""
    from repro.halving.candidates import RandomCandidates, SlidingWindowCandidates

    gens = {
        "prefix": PrefixCandidates(max_pool_size=N),
        "window": SlidingWindowCandidates(),
        "random": RandomCandidates(count=2 * N, rng=5),
    }
    lattice = DistributedLattice.from_prior(bench_ctx, PriorSpec.uniform(N, 0.03), 8)
    cands = gens[strategy].generate(np.full(N, 0.03), (1 << N) - 1)

    benchmark(select_halving_pool_distributed, lattice, cands)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["candidates"] = int(cands.size)
    lattice.unpersist()
