"""Shared benchmark fixtures.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``small`` (default) — CI-friendly sizes, a couple of minutes total;
* ``full``  — the sizes used for the numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import Context

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: Lattice sizes (cohort n; lattice = 2^n states) per experiment class.
SIZES = {
    "small": {
        "r1_baseline": [10, 12, 14],
        "r1_sbgt": [10, 12, 14, 16],
        "r2_baseline": [10, 12, 14],
        "r2_sbgt": [10, 12, 14, 16],
        "r3_baseline": [10, 12, 14],
        "r3_sbgt": [10, 12, 14, 16],
        "r4_n": 16,
        "r4_workers": [1, 2, 4],
        "r5_prevalences": [0.005, 0.02, 0.05, 0.10, 0.20],
        "r5_reps": 8,
        "r5_cohort": 10,
        "r6_reps": 8,
        "r6_cohort": 10,
        "r7_dilutions": [0.0, 0.3, 0.8],
        "r7_reps": 8,
        "r8_n": 14,
    },
    "full": {
        "r1_baseline": [12, 14, 16, 18, 20],
        "r1_sbgt": [12, 14, 16, 18, 20, 22],
        "r2_baseline": [12, 14, 16, 18, 20],
        "r2_sbgt": [12, 14, 16, 18, 20, 22],
        "r3_baseline": [12, 14, 16, 18, 20],
        "r3_sbgt": [12, 14, 16, 18, 20, 22],
        "r4_n": 20,
        "r4_workers": [1, 2, 4, 8],
        "r5_prevalences": [0.005, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20],
        "r5_reps": 30,
        "r5_cohort": 12,
        "r6_reps": 30,
        "r6_cohort": 12,
        "r7_dilutions": [0.0, 0.2, 0.4, 0.8, 1.2],
        "r7_reps": 20,
        "r8_n": 18,
    },
}[SCALE]


@pytest.fixture(scope="module")
def bench_ctx():
    """Thread-mode context sized to the machine (the SBGT deployment)."""
    with Context(mode="threads", parallelism=4) as c:
        yield c
