"""Engine micro-benchmarks (not tied to a paper experiment).

Throughput of the engine primitives SBGT leans on, so regressions in
the substrate are visible independently of the group-testing workloads:
narrow pipelining, shuffle (with and without map-side combine), tree
aggregation, caching, and broadcast fan-out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Context, EngineConfig

N_RECORDS = 50_000
N_PARTS = 8


@pytest.fixture(scope="module")
def ectx():
    with Context(mode="serial") as c:
        yield c


def test_engine_narrow_pipeline(benchmark, ectx):
    rdd = ectx.range(N_RECORDS, num_partitions=N_PARTS)

    def run():
        return rdd.map(lambda x: x + 1).filter(lambda x: x % 3 == 0).map(
            lambda x: x * 2
        ).sum()

    assert benchmark(run) > 0


def test_engine_shuffle_combine(benchmark, ectx):
    pairs = ectx.range(N_RECORDS, num_partitions=N_PARTS).map(lambda x: (x % 100, 1))

    def run():
        return len(pairs.reduce_by_key(lambda a, b: a + b).collect())

    assert benchmark(run) == 100


def test_engine_shuffle_no_combine(benchmark, ectx):
    pairs = ectx.range(N_RECORDS // 5, num_partitions=N_PARTS).map(
        lambda x: (x % 100, x)
    )

    def run():
        return len(pairs.group_by_key().collect())

    assert benchmark(run) == 100


def test_engine_tree_aggregate_numpy_blocks(benchmark, ectx):
    blocks = ectx.parallelize([np.arange(10_000, dtype=np.float64)] * 32, N_PARTS).cache()
    blocks.count()

    def run():
        return blocks.tree_aggregate(
            0.0, lambda acc, a: acc + float(a.sum()), lambda x, y: x + y
        )

    assert benchmark(run) > 0


def test_engine_cached_rescan(benchmark, ectx):
    cached = ectx.range(N_RECORDS, num_partitions=N_PARTS).map(lambda x: x * x).cache()
    cached.count()  # materialize

    def run():
        return cached.sum()

    assert benchmark(run) > 0


def test_engine_broadcast_lookup(benchmark, ectx):
    table = ectx.broadcast({i: i * 2 for i in range(1000)})
    rdd = ectx.range(N_RECORDS // 5, num_partitions=N_PARTS)

    def run():
        return rdd.map(lambda x: table.value[x % 1000]).sum()

    assert benchmark(run) > 0


def test_engine_sort(benchmark, ectx):
    rng = np.random.default_rng(0)
    data = rng.integers(0, 1_000_000, size=N_RECORDS // 5).tolist()
    rdd = ectx.parallelize(data, N_PARTS)

    def run():
        return rdd.sort_by(lambda x: x).first()

    assert benchmark(run) == min(data)


def test_engine_join(benchmark, ectx):
    left = ectx.range(5_000, num_partitions=N_PARTS).map(lambda x: (x % 500, x))
    right = ectx.range(500, num_partitions=N_PARTS).map(lambda x: (x, -x))

    def run():
        return left.join(right).count()

    assert benchmark(run) == 5_000


# ---------------------------------------------------------------------------
# Listener-bus overhead.  The bus is falsy while no listeners are
# registered, so emitters skip event construction entirely; an enabled
# bus with zero listeners should cost the same as events disabled.  The
# flight recorder (on by default) is the one listener production
# contexts carry, so its overhead is benchmarked and bounded too.


def _shuffle_job(ctx: Context) -> int:
    pairs = ctx.range(N_RECORDS // 5, num_partitions=N_PARTS).map(lambda x: (x % 100, 1))
    return len(pairs.reduce_by_key(lambda a, b: a + b).collect())


def _config(enable_events: bool, flight_recorder: bool = False) -> EngineConfig:
    return EngineConfig(
        mode="serial", enable_events=enable_events, flight_recorder=flight_recorder
    )


def test_engine_events_enabled_empty_bus(benchmark):
    with Context(config=_config(enable_events=True)) as c:
        assert benchmark(_shuffle_job, c) == 100


def test_engine_events_disabled(benchmark):
    with Context(config=_config(enable_events=False)) as c:
        assert benchmark(_shuffle_job, c) == 100


def test_engine_flight_recorder_on(benchmark):
    """The default production configuration: recorder subscribed."""
    with Context(config=_config(enable_events=True, flight_recorder=True)) as c:
        assert benchmark(_shuffle_job, c) == 100


def _interleaved_best_medians(
    config_a: EngineConfig, config_b: EngineConfig, rounds: int = 5, reps: int = 7
) -> tuple:
    """Best-of-rounds median walls of the shuffle job under two configs.

    Rounds alternate between the two contexts so clock drift and host
    noise hit both sides equally, and taking the minimum of the round
    medians discards scheduler spikes a single median cannot.
    """
    import statistics
    import time

    def round_median(c: Context) -> float:
        walls = []
        for _ in range(reps):
            t0 = time.perf_counter()
            _shuffle_job(c)
            walls.append(time.perf_counter() - t0)
        return statistics.median(walls)

    with Context(config=config_a) as ca, Context(config=config_b) as cb:
        _shuffle_job(ca)  # warm up both
        _shuffle_job(cb)
        medians_a, medians_b = [], []
        for _ in range(rounds):
            medians_a.append(round_median(ca))
            medians_b.append(round_median(cb))
    return min(medians_a), min(medians_b)


def test_engine_empty_bus_overhead_small():
    """Empty-bus wall stays within a few percent of events-off (the <2%
    target; the assert leaves slack for timer noise on shared hosts)."""
    off, on = _interleaved_best_medians(
        _config(enable_events=False), _config(enable_events=True)
    )
    overhead = (on - off) / off
    print(f"\nempty-bus overhead: {overhead:+.2%} (off={off:.4f}s on={on:.4f}s)")
    assert overhead < 0.10


def test_engine_flight_recorder_overhead_small():
    """The always-on flight recorder costs <2% on the engine micro-job.

    This is the CI acceptance bound for leaving the recorder on by
    default.  Two measurements, either may satisfy the bound:

    * end-to-end — recorder-on vs events-off job walls (interleaved
      best-of-rounds medians).  Truthful but noisy: the ~30 events of
      this 2 ms job cost ~1 us each, well inside host jitter.
    * event budget — (events/job) x (measured per-event construct+post
      cost) / (events-off job wall).  Deterministic, and it is the
      quantity the recorder actually controls.

    A real regression (recorder growing locks, events growing work)
    moves both above 2%; host noise only moves the first.
    """
    import timeit

    off, on = _interleaved_best_medians(
        _config(enable_events=False),
        _config(enable_events=True, flight_recorder=True),
        rounds=7,
    )
    end_to_end = (on - off) / off

    from repro.engine.listener import EventBus, TaskEnd
    from repro.obs.flight import FlightRecorder

    with Context(config=_config(enable_events=True, flight_recorder=True)) as c:
        recorder = c.flight_recorder
        before = recorder.snapshot()["total_seen"]
        _shuffle_job(c)
        events_per_job = recorder.snapshot()["total_seen"] - before

    bus = EventBus()
    bus.register(FlightRecorder())
    reps = 20_000
    per_event = min(
        timeit.repeat(lambda: bus.post(TaskEnd(1, 2, 0.5, 1)), number=reps, repeat=5)
    ) / reps
    budget = events_per_job * per_event / off

    print(
        f"\nflight-recorder overhead: end-to-end {end_to_end:+.2%}, "
        f"budget {budget:.2%} ({events_per_job} events x {per_event * 1e9:.0f}ns "
        f"on a {off * 1000:.2f}ms job)"
    )
    assert end_to_end < 0.02 or budget < 0.02


def test_engine_hub_and_sampler_overhead_small():
    """Metrics hub folding plus a 100 Hz sampler cost <3% on the micro-job.

    This is the CI acceptance bound for the observability stack (PR 8):
    a context whose bus feeds a :class:`HubMetricsListener` while a
    100 Hz :class:`Sampler` is installed must stay within 3% of an
    events-off context.  Same dual measurement as the flight-recorder
    gate — either may satisfy the bound:

    * end-to-end — interleaved best-of-rounds medians, with the sampler
      running only during the instrumented rounds.
    * budget — folded events (cache/shuffle/retry, which the listener
      actually handles) priced at the measured bus-post + hub-fold
      cost, the rest at the dispatch-only cost, divided by the baseline
      job wall; plus the sampler's duty cycle (per-tick frame-walk cost
      x hz), the CPU fraction the sampling thread can consume.
    """
    import statistics
    import time
    import timeit

    from repro.engine.listener import (
        CacheEvict,
        CacheHit,
        CacheMiss,
        EngineListener,
        EventBus,
        ShuffleFetch,
        ShuffleWrite,
        TaskEnd,
        TaskRetry,
    )
    from repro.obs.metrics import HubMetricsListener, MetricsHub
    from repro.obs.sampler import Sampler

    def round_median(c: Context, reps: int = 7) -> float:
        walls = []
        for _ in range(reps):
            t0 = time.perf_counter()
            _shuffle_job(c)
            walls.append(time.perf_counter() - t0)
        return statistics.median(walls)

    sampler = Sampler(hz=100.0)
    with Context(config=_config(enable_events=False)) as base, Context(
        config=_config(enable_events=True)
    ) as inst:
        inst.add_listener(HubMetricsListener(inst.metrics_hub))
        _shuffle_job(base)  # warm up both
        _shuffle_job(inst)
        base_medians, inst_medians = [], []
        for _ in range(7):
            base_medians.append(round_median(base))
            sampler.start().install()
            try:
                inst_medians.append(round_median(inst))
            finally:
                sampler.stop()
                sampler.uninstall()
    off, on = min(base_medians), min(inst_medians)
    end_to_end = (on - off) / off

    folded_types = (
        CacheEvict, CacheHit, CacheMiss, ShuffleFetch, ShuffleWrite, TaskRetry,
    )

    class _CountingListener(EngineListener):
        def __init__(self):
            self.total = 0
            self.folded = 0

        def on_event(self, event) -> None:
            self.total += 1
            if isinstance(event, folded_types):
                self.folded += 1

    with Context(config=_config(enable_events=True)) as c:
        counter = _CountingListener()
        c.add_listener(counter)
        _shuffle_job(c)

    bus = EventBus()
    bus.register(HubMetricsListener(MetricsHub()))
    reps = 20_000

    def timed(make_event) -> float:
        return min(
            timeit.repeat(lambda: bus.post(make_event()), number=reps, repeat=5)
        ) / reps

    per_fold = timed(lambda: ShuffleWrite(3, 0, 10, buffer_bytes=2048))
    per_dispatch = timed(lambda: TaskEnd(1, 2, 0.5, 1))  # no handler: dispatch only
    ticks = 2_000
    per_tick = min(
        timeit.repeat(lambda: sampler._sample_once(), number=ticks, repeat=5)
    ) / ticks
    event_cost = (
        counter.folded * per_fold + (counter.total - counter.folded) * per_dispatch
    )
    budget = event_cost / off + per_tick * sampler.hz

    print(
        f"\nhub+sampler overhead: end-to-end {end_to_end:+.2%}, "
        f"budget {budget:.2%} ({counter.folded}/{counter.total} folded events "
        f"x {per_fold * 1e9:.0f}ns (dispatch {per_dispatch * 1e9:.0f}ns) "
        f"+ {per_tick * 1e6:.1f}us ticks at {sampler.hz:.0f}Hz "
        f"on a {off * 1000:.2f}ms job)"
    )
    assert end_to_end < 0.03 or budget < 0.03


def test_engine_lock_sanitizer_overhead_small():
    """The lock-order sanitizer in ``record`` mode costs <5% on the micro-job.

    This is the CI acceptance bound for running the sanitizer in test
    and canary environments.  Same dual measurement as the other
    observability gates — either may satisfy the bound:

    * end-to-end — sanitizer-record vs sanitizer-off job walls
      (interleaved best-of-rounds medians).
    * budget — (lock acquisitions/job) x (measured per-acquire cost
      delta between record and off mode) / (sanitizer-off job wall).
      Deterministic, and it is the quantity the sanitizer controls:
      its entire footprint is the per-acquire level check.
    """
    import statistics
    import time
    import timeit

    from repro.engine import lockorder
    from repro.engine.lockorder import OrderedLock

    def round_median(c: Context, reps: int = 7) -> float:
        walls = []
        for _ in range(reps):
            t0 = time.perf_counter()
            _shuffle_job(c)
            walls.append(time.perf_counter() - t0)
        return statistics.median(walls)

    previous = lockorder.set_sanitizer_mode("off")
    try:
        with Context(config=_config(enable_events=False)) as c:
            _shuffle_job(c)  # warm up
            off_medians, on_medians = [], []
            for _ in range(7):
                lockorder.set_sanitizer_mode("off")
                off_medians.append(round_median(c))
                lockorder.set_sanitizer_mode("record")
                try:
                    on_medians.append(round_median(c))
                finally:
                    lockorder.set_sanitizer_mode("off")
                    lockorder.clear_violations()
        off, on = min(off_medians), min(on_medians)
        end_to_end = (on - off) / off

        # Count lock acquisitions in one job by wrapping the class method.
        acquires = 0
        orig_acquire = OrderedLock.acquire

        def counting_acquire(self, *args, **kwargs):
            nonlocal acquires
            acquires += 1
            return orig_acquire(self, *args, **kwargs)

        OrderedLock.acquire = counting_acquire
        try:
            with Context(config=_config(enable_events=False)) as c:
                _shuffle_job(c)
        finally:
            OrderedLock.acquire = orig_acquire

        # Price one acquire/release pair in each mode on an uncontended lock.
        probe = OrderedLock("ResultCache._lock")
        reps = 20_000

        def pair():
            probe.acquire()
            probe.release()

        def timed_pair() -> float:
            return min(timeit.repeat(pair, number=reps, repeat=5)) / reps

        lockorder.set_sanitizer_mode("off")
        per_off = timed_pair()
        lockorder.set_sanitizer_mode("record")
        try:
            per_record = timed_pair()
        finally:
            lockorder.set_sanitizer_mode("off")
            lockorder.clear_violations()
        budget = acquires * max(per_record - per_off, 0.0) / off
    finally:
        lockorder.set_sanitizer_mode(previous)
        lockorder.clear_violations()

    print(
        f"\nlock-sanitizer overhead: end-to-end {end_to_end:+.2%}, "
        f"budget {budget:.2%} ({acquires} acquires x "
        f"{(per_record - per_off) * 1e9:+.0f}ns "
        f"(off {per_off * 1e9:.0f}ns, record {per_record * 1e9:.0f}ns) "
        f"on a {off * 1000:.2f}ms job)"
    )
    assert end_to_end < 0.05 or budget < 0.05


# ---------------------------------------------------------------------------
# Process-mode data plane guards.  These pin the two structural wins of
# the data-plane work: the worker-resident block cache (repeated actions
# on a cached RDD stop re-running its lineage in forked workers) and the
# single-pass Bayes update (one scheduler job per update, not two).


def test_process_mode_worker_cache_speedup():
    """Repeated actions on a cached RDD are >=5x faster than uncached.

    parallelism=1 so one forked worker serves every task and its
    resident store sees every repeated partition.  The build is made
    deliberately compute-heavy (10 ms per record); before the worker
    store existed, process mode re-ran it on every action.
    """
    import time

    def slow_square(x):
        time.sleep(0.01)
        return x * x

    n_actions = 6
    with Context(mode="processes", parallelism=1) as c:
        uncached = c.parallelize(list(range(5)), 1).map(slow_square)
        cached = c.parallelize(list(range(5)), 1).map(slow_square).cache()
        expected = cached.sum()  # materialize in the worker store (untimed)

        t0 = time.perf_counter()
        for _ in range(n_actions):
            assert uncached.sum() == expected
        wall_uncached = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(n_actions):
            assert cached.sum() == expected
        wall_cached = time.perf_counter() - t0

    ratio = wall_uncached / wall_cached
    print(
        f"\nworker-cache speedup: {ratio:.1f}x "
        f"(uncached={wall_uncached:.3f}s cached={wall_cached:.3f}s "
        f"over {n_actions} actions)"
    )
    assert ratio >= 5.0


def test_update_is_single_pass():
    """One Bayes update schedules exactly one engine job.

    The two-pass formulation ran a likelihood-apply pass and then a
    mass/rescale pass; deferred normalisation (``log_offset``) fuses
    them, so a single ``JobStart`` per update is the structural
    invariant.  Posterior parity with the serial reference is pinned by
    the sbgt integration tests.
    """
    from repro.bayes.dilution import DilutionErrorModel
    from repro.bayes.priors import PriorSpec
    from repro.engine.listener import JobStart, RecordingListener
    from repro.sbgt.distributed_lattice import DistributedLattice

    prior = PriorSpec(np.array([0.05, 0.2, 0.1, 0.3, 0.15, 0.08]))
    model = DilutionErrorModel(0.97, 0.99, 0.35)
    with Context(mode="serial") as c:
        dl = DistributedLattice.from_prior(c, prior, 4)
        rec = c.add_listener(RecordingListener())
        for pool, outcome in [(0b000111, True), (0b111000, False)]:
            rec.clear()
            ll = model.log_likelihood_by_count(outcome, bin(pool).count("1"))
            dl.update(pool, ll)
            jobs = rec.of_type(JobStart)
            assert len(jobs) == 1, [j.description for j in jobs]
        dl.unpersist()


# ---------------------------------------------------------------------------
# Posterior-backend guard.  The dense lattice walls at 2^N; the sparse
# backend must take a cohort far past that wall through a complete
# screen inside a hard wall-clock budget.


def test_sparse_backend_large_n_screen_smoke():
    """A full N=120 screen on the sparse backend finishes in < 30 s.

    2^120 dense states is ~1e36 — the dense backend cannot represent
    this cohort at all, so completing end-to-end (pools proposed, tests
    run, everyone classified) is the acceptance bar for the
    representation-bounded backend, and the wall bound keeps it an
    interactive-scale operation rather than a batch job.
    """
    import time

    from repro.bayes.dilution import DilutionErrorModel
    from repro.bayes.priors import PriorSpec
    from repro.halving.policy import BHAPolicy
    from repro.sbgt.config import SBGTConfig
    from repro.sbgt.session import SBGTSession

    n = 120
    prior = PriorSpec.uniform(n, 0.04)
    model = DilutionErrorModel(0.98, 0.995, 0.3)
    config = SBGTConfig(backend="sparse", max_stages=200)

    t0 = time.perf_counter()
    session = SBGTSession(None, prior, model, config)
    try:
        result = session.run_screen(BHAPolicy(), rng=7)
    finally:
        session.close()
    wall = time.perf_counter() - t0

    print(
        f"\nsparse N={n} screen: {wall:.2f}s, {result.efficiency.num_tests} tests, "
        f"{result.stages_used} stages, accuracy {result.accuracy:.1%}"
    )
    assert not result.exhausted_budget
    assert len(result.report.undetermined()) == 0
    assert result.efficiency.num_tests > 0
    assert wall < 30.0
