"""Engine micro-benchmarks (not tied to a paper experiment).

Throughput of the engine primitives SBGT leans on, so regressions in
the substrate are visible independently of the group-testing workloads:
narrow pipelining, shuffle (with and without map-side combine), tree
aggregation, caching, and broadcast fan-out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Context, EngineConfig

N_RECORDS = 50_000
N_PARTS = 8


@pytest.fixture(scope="module")
def ectx():
    with Context(mode="serial") as c:
        yield c


def test_engine_narrow_pipeline(benchmark, ectx):
    rdd = ectx.range(N_RECORDS, num_partitions=N_PARTS)

    def run():
        return rdd.map(lambda x: x + 1).filter(lambda x: x % 3 == 0).map(
            lambda x: x * 2
        ).sum()

    assert benchmark(run) > 0


def test_engine_shuffle_combine(benchmark, ectx):
    pairs = ectx.range(N_RECORDS, num_partitions=N_PARTS).map(lambda x: (x % 100, 1))

    def run():
        return len(pairs.reduce_by_key(lambda a, b: a + b).collect())

    assert benchmark(run) == 100


def test_engine_shuffle_no_combine(benchmark, ectx):
    pairs = ectx.range(N_RECORDS // 5, num_partitions=N_PARTS).map(
        lambda x: (x % 100, x)
    )

    def run():
        return len(pairs.group_by_key().collect())

    assert benchmark(run) == 100


def test_engine_tree_aggregate_numpy_blocks(benchmark, ectx):
    blocks = ectx.parallelize([np.arange(10_000, dtype=np.float64)] * 32, N_PARTS).cache()
    blocks.count()

    def run():
        return blocks.tree_aggregate(
            0.0, lambda acc, a: acc + float(a.sum()), lambda x, y: x + y
        )

    assert benchmark(run) > 0


def test_engine_cached_rescan(benchmark, ectx):
    cached = ectx.range(N_RECORDS, num_partitions=N_PARTS).map(lambda x: x * x).cache()
    cached.count()  # materialize

    def run():
        return cached.sum()

    assert benchmark(run) > 0


def test_engine_broadcast_lookup(benchmark, ectx):
    table = ectx.broadcast({i: i * 2 for i in range(1000)})
    rdd = ectx.range(N_RECORDS // 5, num_partitions=N_PARTS)

    def run():
        return rdd.map(lambda x: table.value[x % 1000]).sum()

    assert benchmark(run) > 0


def test_engine_sort(benchmark, ectx):
    rng = np.random.default_rng(0)
    data = rng.integers(0, 1_000_000, size=N_RECORDS // 5).tolist()
    rdd = ectx.parallelize(data, N_PARTS)

    def run():
        return rdd.sort_by(lambda x: x).first()

    assert benchmark(run) == min(data)


def test_engine_join(benchmark, ectx):
    left = ectx.range(5_000, num_partitions=N_PARTS).map(lambda x: (x % 500, x))
    right = ectx.range(500, num_partitions=N_PARTS).map(lambda x: (x, -x))

    def run():
        return left.join(right).count()

    assert benchmark(run) == 5_000


# ---------------------------------------------------------------------------
# Listener-bus overhead.  The bus is falsy while no listeners are
# registered, so emitters skip event construction entirely; an enabled
# bus with zero listeners should cost the same as events disabled.


def _shuffle_job(ctx: Context) -> int:
    pairs = ctx.range(N_RECORDS // 5, num_partitions=N_PARTS).map(lambda x: (x % 100, 1))
    return len(pairs.reduce_by_key(lambda a, b: a + b).collect())


def test_engine_events_enabled_empty_bus(benchmark):
    with Context(mode="serial", config=EngineConfig(mode="serial", enable_events=True)) as c:
        assert benchmark(_shuffle_job, c) == 100


def test_engine_events_disabled(benchmark):
    with Context(mode="serial", config=EngineConfig(mode="serial", enable_events=False)) as c:
        assert benchmark(_shuffle_job, c) == 100


def test_engine_empty_bus_overhead_small():
    """Median wall of the empty-bus run stays within a few percent of the
    events-off run (the <2% target; the assert leaves slack for timer
    noise on shared CI hosts)."""
    import statistics
    import time

    def median_wall(enable_events: bool) -> float:
        with Context(
            mode="serial", config=EngineConfig(mode="serial", enable_events=enable_events)
        ) as c:
            _shuffle_job(c)  # warm up
            walls = []
            for _ in range(7):
                t0 = time.perf_counter()
                _shuffle_job(c)
                walls.append(time.perf_counter() - t0)
        return statistics.median(walls)

    off = median_wall(False)
    on = median_wall(True)
    overhead = (on - off) / off
    print(f"\nempty-bus overhead: {overhead:+.2%} (off={off:.4f}s on={on:.4f}s)")
    assert overhead < 0.10
