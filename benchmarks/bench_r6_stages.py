"""R6 — the stages/tests trade-off of look-ahead rules.

Sequential halving minimises tests but serialises lab round-trips;
k-pool look-ahead batches cut stages at a small test premium.  Each bench
replays the same cohorts under a different rule and reports mean stages
and mean tests in ``extra_info``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SIZES
from repro.bayes.dilution import DilutionErrorModel
from repro.bayes.priors import PriorSpec
from repro.halving.hybrid import HybridPolicy
from repro.halving.policy import BHAPolicy, LookaheadPolicy
from repro.simulate.population import make_cohort
from repro.workflows.classify import run_screen

MODEL = DilutionErrorModel(0.98, 0.995, 0.3)
COHORT = SIZES["r6_cohort"]
REPS = SIZES["r6_reps"]

RULES = {
    "bha": BHAPolicy,
    "lookahead-2": lambda: LookaheadPolicy(2),
    "lookahead-3": lambda: LookaheadPolicy(3),
    "hybrid": lambda: HybridPolicy(),
}


def _mc_batch(rule_factory) -> dict:
    prior = PriorSpec.uniform(COHORT, 0.05)
    stages, tests = [], []
    rng = np.random.default_rng(777)
    for rep in range(REPS):
        cohort = make_cohort(prior, rng=1000 + rep)  # shared across rules
        res = run_screen(prior, MODEL, rule_factory(), rng=rng, cohort=cohort, max_stages=60)
        stages.append(res.stages_used)
        tests.append(res.efficiency.num_tests)
    return {
        "stages_mean": float(np.mean(stages)),
        "stages_std": float(np.std(stages)),
        "tests_mean": float(np.mean(tests)),
    }


@pytest.mark.parametrize("rule", sorted(RULES))
def test_r6_stage_tradeoff(benchmark, rule):
    result = benchmark.pedantic(_mc_batch, args=(RULES[rule],), rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    benchmark.extra_info["rule"] = rule
